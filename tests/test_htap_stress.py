"""Seeded concurrent HTAP stress: racing threads, oracle-checked answers.

The deterministic interleavings of ``tests/test_htap_oracle.py`` prove
the epoch semantics; this module makes threads actually race.  An
updater streams real workload batches while query clients pin epochs
and answer range/kNN batches concurrently (``benchmarks/load_driver
.run_htap``); every recorded answer is then replayed against the
quiescent twin by :class:`~repro.serve.EpochOracle` — bit-identical or
the run fails, with the seed in the test id for replay.

The seed matrix is published as ``load_driver.HTAP_SEEDS``; set the
``HTAP_SEED`` environment variable to pin a single seed (the CI htap
job fans the matrix out that way).  One extra run SIGKILLs a process
worker mid-stream and requires post-recovery cuts to stay consistent.
"""

from __future__ import annotations

import os
import random
import signal
import sys
import threading
import time

import pytest

_BENCH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks")
if _BENCH not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _BENCH)

import load_driver

from repro.bench.harness import build_standard_indexes
from repro.objects.knn import KNNQuery
from repro.serve import EpochOracle, ShardFailedError
from repro.workload.events import UpdateEvent
from repro.workload.generator import build_workload
from repro.workload.parameters import WorkloadParameters

pytestmark = pytest.mark.slow

PARAMS = WorkloadParameters(num_objects=1_000, time_duration=30.0, num_queries=10)

SHARDS = 4

EXECUTOR_NAMES = ("serial", "thread", "process")


def _seeds():
    pinned = os.environ.get("HTAP_SEED")
    if pinned is not None:
        return (int(pinned),)
    return load_driver.HTAP_SEEDS


@pytest.fixture(scope="module")
def workload():
    return build_workload("SA", PARAMS)


@pytest.fixture(scope="module")
def update_batches(workload):
    return [
        [(event.old, event.new) for event in batch]
        for batch in workload.grouped_events(window=1.0)
        if isinstance(batch[0], UpdateEvent)
    ]


@pytest.fixture(scope="module")
def queries(workload):
    return [event.query for event in workload.query_events]


@pytest.fixture(scope="module")
def probes(workload):
    events = workload.sorted_events()
    issue_time = events[-1].time if events else 0.0
    return [
        KNNQuery(
            center=event.query.range.center,
            k=(1, 5, 10)[i % 3],
            query_time=issue_time + event.query.predictive_time,
            issue_time=issue_time,
        )
        for i, event in enumerate(workload.query_events)
    ]


def _build(workload, executor):
    return build_standard_indexes(
        workload, PARAMS, which=("Bx",), shards=SHARDS, executor=executor
    )["Bx"]


def _oracle(index):
    return EpochOracle(
        num_shards=index.num_shards,
        shard_factory=index.shard_factory,
        space=PARAMS.space,
    )


@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
@pytest.mark.parametrize("seed", _seeds())
def test_concurrent_pinned_answers_are_oracle_consistent(
    workload, update_batches, queries, probes, executor, seed
):
    """Racing updater + query clients: every answered cut is bit-exact."""
    index = _build(workload, executor)
    with index, _oracle(index) as oracle:
        index.bulk_load(workload.initial_objects)
        oracle.record_mutation(index.epoch, "bulk_load", (workload.initial_objects, None))
        report = load_driver.run_htap(
            index,
            oracle,
            update_batches,
            queries,
            probes,
            query_clients=2,
            space=PARAMS.space,
            seed=seed,
        )
    assert report["answers_checked"] > 0, (executor, seed)
    assert report["answers_consistent"] == 1.0, report.get("first_mismatch")
    assert report["final_epoch"] == 1 + len(update_batches)
    assert report["epoch_lag_max"] >= report["epoch_lag_mean"] >= 0.0


@pytest.mark.parametrize("seed", _seeds()[:1])
def test_sigkill_mid_stream_keeps_post_recovery_epochs_consistent(
    workload, update_batches, queries, probes, seed
):
    """A process worker dies mid-stream; recovered cuts stay oracle-exact.

    The updater streams batches while a query client pins and answers;
    a killer thread SIGKILLs one worker once a few epochs have landed.
    Mutations heal the shard through WAL replay (epochs included);
    queries that catch the degraded window skip recording (strict reads
    on a dead shard fail loudly, never wrongly).  Afterwards the oracle
    replays every recorded answer — those answered across the recovery
    boundary must still be bit-identical to the quiescent twin.
    """
    victim = 2
    index = _build(workload, "process")
    with index, _oracle(index) as oracle:
        index.bulk_load(workload.initial_objects)
        oracle.record_mutation(index.epoch, "bulk_load", (workload.initial_objects, None))

        stop = threading.Event()
        errors: list = []
        answers: list = []  # (epoch, kind, payload, answer), recorded post-join
        skipped = [0]

        def killer() -> None:
            while index.epoch < 4 and not stop.is_set():
                time.sleep(0.005)
            os.kill(index.executor.worker_pid(victim), signal.SIGKILL)

        def updater() -> None:
            try:
                for pairs in update_batches:
                    index.update_batch(pairs)
                    oracle.record_mutation(index.epoch, "update_batch", pairs)
            except BaseException as error:  # noqa: BLE001 - re-raised below
                errors.append(error)
            finally:
                stop.set()

        def query_client() -> None:
            rng = random.Random(seed * 7919 + 1)
            local: list = []
            try:
                while not stop.is_set():
                    batch = rng.sample(queries, min(4, len(queries)))
                    probe_batch = rng.sample(probes, min(4, len(probes)))
                    try:
                        with index.pin() as epoch:
                            ranges = index.range_query_batch(batch, epoch=epoch)
                            knn = index.knn_query_batch(
                                probe_batch, space=PARAMS.space, epoch=epoch
                            )
                    except ShardFailedError:
                        # The dead-worker window: degraded, not wrong.
                        skipped[0] += 1
                        continue
                    local.append((epoch, "range", batch, ranges))
                    local.append((epoch, "knn", probe_batch, knn))
            except BaseException as error:  # noqa: BLE001 - re-raised below
                errors.append(error)
                stop.set()
            answers.extend(local)

        threads = [
            threading.Thread(target=updater),
            threading.Thread(target=query_client),
            threading.Thread(target=killer),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]

        # The kill landed mid-stream and WAL recovery healed the shard
        # without forking the epoch counter.
        assert any(e["shard_id"] == victim for e in index.recovery_events)
        assert index.executor.worker_alive(victim)
        assert index.epoch == 1 + len(update_batches)

        for epoch, kind, payload, answer in answers:
            oracle.record_answer(epoch, kind, payload, answer)
        assert oracle.answers_recorded > 0
        # Post-recovery cut, answered after the dust settled.
        with index.pin() as epoch:
            oracle.record_answer(
                epoch, "range", queries, index.range_query_batch(queries, epoch=epoch)
            )
            oracle.record_answer(
                epoch,
                "knn",
                probes,
                index.knn_query_batch(probes, space=PARAMS.space, epoch=epoch),
            )
        oracle.assert_consistent()
