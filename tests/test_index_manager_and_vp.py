"""Tests for the index manager (Algorithm 3) and the VP index facades."""

import random

import pytest

from repro.bxtree.bx_tree import BxTree
from repro.core.dva import DominantVelocityAxis
from repro.core.index_manager import OUTLIER_PARTITION, IndexManager
from repro.core.partitioned_index import (
    VPIndex,
    analyze_sample,
    make_vp_bx_tree,
    make_vp_tprstar_tree,
    rotated_space_bounds,
    sample_velocities_from_objects,
)
from repro.core.velocity_analyzer import VelocityPartitioning
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector
from repro.objects.moving_object import MovingObject
from repro.objects.queries import CircularRange, MovingRangeQuery, RectangularRange, TimeSliceRangeQuery
from repro.storage.buffer_manager import BufferManager
from repro.tprtree.tprstar_tree import TPRStarTree

from tests.conftest import SMALL_SPACE, brute_force_range, make_circular_query, make_objects


def xy_partitioning(tau: float = 5.0) -> VelocityPartitioning:
    return VelocityPartitioning(
        dvas=[
            DominantVelocityAxis(axis=Vector(1.0, 0.0), tau=tau),
            DominantVelocityAxis(axis=Vector(0.0, 1.0), tau=tau),
        ]
    )


def tpr_manager(tau: float = 5.0) -> IndexManager:
    buffer = BufferManager(capacity=64)
    return IndexManager(
        xy_partitioning(tau),
        index_factory=lambda partition: TPRStarTree(buffer=buffer, max_entries=8),
    )


class TestRouting:
    def test_insert_routes_by_direction(self):
        manager = tpr_manager()
        along_x = MovingObject(1, Point(100, 100), Vector(30.0, 1.0))
        along_y = MovingObject(2, Point(200, 200), Vector(1.0, 30.0))
        diagonal = MovingObject(3, Point(300, 300), Vector(20.0, 20.0))
        assert manager.insert(along_x) == 0
        assert manager.insert(along_y) == 1
        assert manager.insert(diagonal) == OUTLIER_PARTITION
        sizes = manager.partition_sizes()
        assert sizes[0] == 1 and sizes[1] == 1 and sizes[OUTLIER_PARTITION] == 1

    def test_duplicate_insert_rejected(self):
        manager = tpr_manager()
        obj = MovingObject(1, Point(0, 0), Vector(1.0, 0.0))
        manager.insert(obj)
        with pytest.raises(KeyError):
            manager.insert(obj)

    def test_delete_uses_directory(self):
        manager = tpr_manager()
        obj = MovingObject(1, Point(50, 50), Vector(25.0, 0.0))
        manager.insert(obj)
        assert manager.delete(1)
        assert not manager.delete(1)
        assert len(manager) == 0

    def test_update_migrates_partition_on_turn(self):
        manager = tpr_manager()
        obj = MovingObject(1, Point(50, 50), Vector(25.0, 0.0))
        manager.insert(obj)
        assert manager.partition_of(1) == 0
        turned = obj.with_update(Point(60, 50), Vector(0.5, 25.0), 5.0)
        assert manager.update(turned) == 1
        assert manager.partition_of(1) == 1
        assert len(manager) == 1

    def test_stored_object_returns_original_coordinates(self):
        manager = tpr_manager()
        obj = MovingObject(7, Point(123.0, 456.0), Vector(0.0, 10.0))
        manager.insert(obj)
        assert manager.stored_object(7) == obj
        assert manager.stored_object(99) is None


class TestBatchSurface:
    def test_insert_batch_matches_sequential(self):
        objects = make_objects(60, seed=11)
        sequential = tpr_manager()
        batched = tpr_manager()
        partitions = [sequential.insert(obj) for obj in objects]
        assert batched.insert_batch(objects) == partitions
        assert len(batched) == len(sequential)
        for obj in objects:
            assert batched.partition_of(obj.oid) == sequential.partition_of(obj.oid)
            assert batched.stored_object(obj.oid) == obj

    def test_insert_batch_rejects_duplicates_atomically(self):
        manager = tpr_manager()
        obj = MovingObject(1, Point(50, 50), Vector(25.0, 0.0))
        manager.insert(obj)
        fresh = MovingObject(2, Point(60, 60), Vector(25.0, 0.0))
        with pytest.raises(KeyError):
            manager.insert_batch([fresh, obj])
        # Nothing from the rejected batch may have been committed.
        assert len(manager) == 1
        assert manager.partition_of(2) is None
        with pytest.raises(KeyError):
            manager.insert_batch([fresh, fresh])
        assert manager.partition_of(2) is None

    def test_delete_batch_matches_sequential(self):
        objects = make_objects(60, seed=12)
        sequential = tpr_manager()
        batched = tpr_manager()
        sequential.insert_batch(objects)
        batched.insert_batch(objects)
        victims = [obj.oid for obj in objects[:20]] + [999, objects[0].oid]
        expected = [sequential.delete(oid) for oid in victims]
        assert batched.delete_batch(victims) == expected
        assert len(batched) == len(sequential)

    def test_vp_facade_insert_delete_batch(self, axis_objects):
        partitioning = analyze_sample(
            sample_velocities_from_objects(axis_objects), k=2
        )
        index = make_vp_tprstar_tree(partitioning, buffer_pages=64, max_entries=8)
        index.insert_batch(axis_objects)
        assert len(index) == len(axis_objects)
        flags = index.delete_batch(axis_objects[:30])
        assert flags == [True] * 30
        assert len(index) == len(axis_objects) - 30
        assert index.delete_batch(axis_objects[:1]) == [False]


class TestQueryTransformation:
    def test_circular_query_stays_circular(self):
        manager = tpr_manager()
        query = TimeSliceRangeQuery(CircularRange(Point(10, 20), 5.0), time=3.0)
        transformed = manager.transform_query(query, 1)
        assert isinstance(transformed.range, CircularRange)
        assert transformed.range.radius == 5.0

    def test_rectangular_query_becomes_mbr(self):
        partitioning = VelocityPartitioning(
            dvas=[DominantVelocityAxis(axis=Vector(1.0, 1.0), tau=5.0)]
        )
        buffer = BufferManager(capacity=16)
        manager = IndexManager(
            partitioning, lambda p: TPRStarTree(buffer=buffer, max_entries=8)
        )
        query = TimeSliceRangeQuery(RectangularRange(Rect(0, 0, 10, 10)), time=1.0)
        transformed = manager.transform_query(query, 0)
        assert isinstance(transformed.range, RectangularRange)
        # A rotated square's MBR is strictly larger than the original.
        assert transformed.range.rect.area >= 100.0

    def test_outlier_query_untouched(self):
        manager = tpr_manager()
        query = TimeSliceRangeQuery(CircularRange(Point(10, 20), 5.0), time=3.0)
        assert manager.transform_query(query, OUTLIER_PARTITION) is query

    def test_moving_query_velocity_is_rotated(self):
        manager = tpr_manager()
        query = MovingRangeQuery(
            CircularRange(Point(0, 0), 5.0), Vector(3.0, 0.0), 0.0, 5.0
        )
        transformed = manager.transform_query(query, 1)
        assert transformed.velocity is not None
        assert transformed.velocity.magnitude == pytest.approx(3.0)


class TestManagerQueriesMatchBruteForce:
    def test_range_query_correct_on_axis_aligned_objects(self):
        manager = tpr_manager(tau=8.0)
        objects = make_objects(150, axis_aligned=True, seed=71)
        for obj in objects:
            manager.insert(obj)
        rng = random.Random(5)
        for _ in range(12):
            center = Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
            query = make_circular_query(center, 1500.0, time=rng.uniform(0.0, 30.0))
            assert set(manager.range_query(query)) == brute_force_range(objects, query)


class TestVPFactories:
    def test_rotated_space_bounds_cover_space(self):
        partitioning = analyze_sample(
            [Vector(30.0, 1.0), Vector(-40.0, 0.5), Vector(1.0, 30.0), Vector(0.5, -20.0)], k=2
        )
        bounds = rotated_space_bounds(SMALL_SPACE, partitioning)
        assert len(bounds) == 2
        for dva, bound in zip(partitioning.dvas, bounds):
            for corner in SMALL_SPACE.corners():
                assert bound.contains_point(dva.frame.to_frame_point(corner))

    def test_sample_velocities_from_objects(self):
        objects = make_objects(10, seed=1)
        sample = sample_velocities_from_objects(objects)
        assert len(sample) == 10
        assert sample[0] == objects[0].velocity

    def _check_vp_index(self, index: VPIndex, objects):
        for obj in objects:
            index.insert(obj)
        assert len(index) == len(objects)
        rng = random.Random(3)
        for _ in range(8):
            center = Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
            query = make_circular_query(center, 1500.0, time=rng.uniform(0.0, 25.0))
            assert set(index.range_query(query)) == brute_force_range(objects, query)
        # Update a handful of objects and re-check.
        updated = list(objects)
        for i in rng.sample(range(len(objects)), 20):
            old = updated[i]
            new = MovingObject(
                old.oid,
                old.position_at(30.0),
                Vector(rng.uniform(-40, 40), rng.uniform(-40, 40)),
                30.0,
            )
            index.update(old, new)
            updated[i] = new
        query = make_circular_query(Point(5000, 5000), 2500.0, time=45.0, issue_time=30.0)
        assert set(index.range_query(query)) == brute_force_range(updated, query)
        # Delete everything.
        for obj in updated:
            assert index.delete(obj)
        assert len(index) == 0

    def test_vp_bx_tree_end_to_end(self):
        objects = make_objects(120, axis_aligned=True, seed=81, max_speed=40.0)
        partitioning = analyze_sample(sample_velocities_from_objects(objects), k=2)
        index = make_vp_bx_tree(
            partitioning,
            space=SMALL_SPACE,
            buffer_pages=32,
            max_update_interval=40.0,
            curve_order=6,
            page_size=512,
        )
        assert index.name == "Bx(VP)"
        assert len(index.dva_indexes) == 2
        assert isinstance(index.outlier_index, BxTree)
        self._check_vp_index(index, objects)

    def test_vp_tprstar_tree_end_to_end(self):
        objects = make_objects(120, axis_aligned=True, seed=83, max_speed=40.0)
        partitioning = analyze_sample(sample_velocities_from_objects(objects), k=2)
        index = make_vp_tprstar_tree(partitioning, buffer_pages=32, max_entries=8)
        assert index.name == "TPR*(VP)"
        assert all(isinstance(t, TPRStarTree) for t in index.dva_indexes)
        self._check_vp_index(index, objects)

    def test_partition_sizes_add_up(self):
        objects = make_objects(60, axis_aligned=True, seed=85)
        partitioning = analyze_sample(sample_velocities_from_objects(objects), k=2)
        index = make_vp_tprstar_tree(partitioning, buffer_pages=16, max_entries=8)
        for obj in objects:
            index.insert(obj)
        sizes = index.partition_sizes()
        assert sum(sizes.values()) == len(objects)
