"""The KeyStore contract: FlatKeyStore pinned bit-identical to BPlusTree.

The flat vectorized backend re-implements the exact semantics the
Bx-tree historically consumed from the paged B+-tree — duplicate keys in
insertion order, leftmost-match delete/replace, the merged
``apply_batch`` work ordering (deletes before upserts before inserts of
the same key, upsert-miss degrading to an insertion) and ``(key, value)``
range results in key order.  The Hypothesis suites drive both backends
through random operation interleavings and mixed batches over a tiny
key/value domain (so duplicate keys and value collisions are the common
case, not the edge case) and require the stores to agree after every
step.  The factory tests pin the ``make_key_store`` idiom to its
``make_executor`` sibling.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.btree.bplus_tree import BPlusTree
from repro.bxtree import (
    KEY_STORES,
    BTreeKeyStore,
    BxTree,
    FlatKeyStore,
    make_key_store,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector
from repro.objects.moving_object import MovingObject
from repro.storage.buffer_manager import BufferManager

PROPERTY_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# Tiny domains make duplicate keys and equal values the common case.
keys = st.integers(min_value=0, max_value=15)
values = st.integers(min_value=0, max_value=3)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys, values),
        st.tuples(st.just("delete"), keys, values),
        st.tuples(st.just("replace"), keys, values, values),
        st.tuples(
            st.just("batch"),
            st.lists(st.tuples(keys, values), max_size=4),
            st.lists(st.tuples(keys, values), max_size=4),
            st.lists(st.tuples(keys, values, values), max_size=4),
        ),
    ),
    max_size=25,
)


def _apply(store, op):
    """Apply one drawn operation; returns the backend's observable result."""
    if op[0] == "insert":
        return store.insert(op[1], op[2])
    if op[0] == "delete":
        return store.delete(op[1], op[2])
    if op[0] == "replace":
        return store.replace(op[1], op[2], op[3])
    _, deletes, inserts, upserts = op
    flags = store.apply_batch(deletes, inserts, upserts)
    return (list(flags[0]), list(flags[1]))


# ----------------------------------------------------------------------
# Differential properties: FlatKeyStore vs BPlusTree
# ----------------------------------------------------------------------
@PROPERTY_SETTINGS
@given(ops=operations)
def test_random_interleavings_match_btree(ops):
    """Same flags, same contents, same order — after every single step."""
    reference = BPlusTree()
    flat = FlatKeyStore()
    for op in ops:
        expected = _apply(reference, op)
        actual = _apply(flat, op)
        if op[0] == "batch":
            assert (list(expected[0]), list(expected[1])) == actual
        else:
            assert expected == actual
        assert list(reference.items()) == list(flat.items())


@PROPERTY_SETTINGS
@given(
    ops=operations,
    bounds=st.lists(st.tuples(keys, keys), min_size=1, max_size=6),
)
def test_range_searches_match_btree(ops, bounds):
    """Point ranges, inverted ranges and batch scans agree on final state."""
    reference = BPlusTree()
    flat = FlatKeyStore()
    for op in ops:
        _apply(reference, op)
        _apply(flat, op)
    for low, high in bounds:
        assert reference.range_search(low, high) == flat.range_search(low, high)
    assert reference.range_search_batch(bounds) == flat.range_search_batch(bounds)
    assert reference.range_search_batch(
        bounds, sequential_hint=False
    ) == flat.range_search_batch(bounds, sequential_hint=False)


@PROPERTY_SETTINGS
@given(pairs=st.lists(st.tuples(keys, values), max_size=30))
def test_bulk_load_matches_btree(pairs):
    """Stable key sort: ties keep arrival order on both backends."""
    reference = BPlusTree()
    flat = FlatKeyStore()
    reference.bulk_load(list(pairs))
    flat.bulk_load(list(pairs))
    assert list(reference.items()) == list(flat.items())
    assert len(reference) == len(flat) == flat.size


# ----------------------------------------------------------------------
# Boundary semantics
# ----------------------------------------------------------------------
def test_empty_store_edges():
    flat = FlatKeyStore()
    assert flat.range_search(0, 100) == []
    assert flat.range_search_batch([]) == []
    assert flat.range_search_batch([(0, 5), (5, 0)]) == [[], []]
    assert flat.knn_candidates_batch([]) == []
    assert list(flat.items()) == []
    assert flat.delete(3, 1) is False
    assert flat.replace(3, 1, 2) is False
    assert flat.apply_batch() == ([], [])


def test_bulk_load_requires_empty():
    flat = FlatKeyStore()
    flat.insert(1, 1)
    with pytest.raises(ValueError, match="empty"):
        flat.bulk_load([(2, 2)])


def test_boundary_ranges_are_inclusive():
    flat = FlatKeyStore()
    for key in (2, 2, 5, 9):
        flat.insert(key, key * 10)
    assert flat.range_search(2, 2) == [(2, 20), (2, 20)]
    assert flat.range_search(3, 4) == []
    assert flat.range_search(9, 9) == [(9, 90)]
    assert flat.range_search(0, 100) == [(2, 20), (2, 20), (5, 50), (9, 90)]


def test_results_are_python_scalars():
    """No numpy scalar types may leak into results (pickle/JSON identity)."""
    flat = FlatKeyStore()
    flat.insert(7, "x")
    ((key, _),) = flat.range_search(0, 10)
    assert type(key) is int
    ((key, _),) = list(flat.items())
    assert type(key) is int


def test_knn_candidates_match_btree_backend():
    objects = [
        MovingObject(oid=i, position=Point(10.0 * i, 5.0 * i),
                     velocity=Vector(1.0, -1.0), reference_time=float(i % 3))
        for i in range(12)
    ]
    paged = BTreeKeyStore()
    flat = FlatKeyStore()
    for store in (paged, flat):
        store.bulk_load([(i % 5, obj) for i, obj in enumerate(objects)])
    ranges = [(0, 2), (3, 4), (4, 3), (0, 10)]
    expected = paged.knn_candidates_batch(ranges)
    actual = flat.knn_candidates_batch(ranges)
    assert expected == actual
    for per_range in actual:
        for cand in per_range:
            assert type(cand[0]) is int
            assert all(type(field) is float for field in cand[1:])


def test_knn_candidates_fall_back_for_opaque_payloads():
    """Non-motion payloads (the property suites use ints) must not crash."""
    flat = FlatKeyStore()
    flat.insert(1, 123)
    flat.delete(1, 123)
    objects = [
        MovingObject(oid=i, position=Point(1.0, 2.0), velocity=Vector(0.0, 0.0))
        for i in range(3)
    ]
    for i, obj in enumerate(objects):
        flat.insert(i, obj)
    assert flat.knn_candidates_batch([(0, 2)]) == [
        [(o.oid, 1.0, 2.0, 0.0, 0.0, 0.0) for o in objects]
    ]


# ----------------------------------------------------------------------
# The make_key_store factory (the make_executor idiom)
# ----------------------------------------------------------------------
def test_factory_resolves_default_names_classes_and_instances():
    assert isinstance(make_key_store(None), BTreeKeyStore)
    assert isinstance(make_key_store("btree"), BTreeKeyStore)
    assert isinstance(make_key_store("flat"), FlatKeyStore)
    assert isinstance(make_key_store(FlatKeyStore), FlatKeyStore)
    ready = FlatKeyStore()
    assert make_key_store(ready) is ready
    assert set(KEY_STORES) == {"btree", "flat"}


def test_factory_rejects_unknown_name_and_bad_spec():
    with pytest.raises(ValueError, match="unknown key store"):
        make_key_store("lsm")
    with pytest.raises(TypeError, match="key_store"):
        make_key_store(42)


def test_factory_threads_buffer_and_page_size():
    buffer = BufferManager(capacity=7)
    paged = make_key_store("btree", buffer=buffer, page_size=512)
    assert paged.buffer is buffer
    assert paged.tree.buffer is buffer
    flat = make_key_store("flat", buffer=buffer, page_size=512)
    assert flat.buffer is buffer


def test_bxtree_selects_backend_and_rejects_nonempty_instance():
    assert isinstance(BxTree().store, BTreeKeyStore)
    assert isinstance(BxTree(key_store="flat").store, FlatKeyStore)
    used = FlatKeyStore()
    used.insert(1, 1)
    with pytest.raises(ValueError, match="empty"):
        BxTree(key_store=used)


def test_multi_tree_factories_reject_instances():
    from repro.core.partitioned_index import make_vp_bx_tree
    from repro.serve.sharded_index import _FamilyFactory

    instance = FlatKeyStore()
    with pytest.raises(TypeError, match="instance"):
        make_vp_bx_tree(None, key_store=instance)
    with pytest.raises(TypeError, match="name or class"):
        _FamilyFactory("Bx", key_store=instance)


# ----------------------------------------------------------------------
# The deprecation shim
# ----------------------------------------------------------------------
@pytest.mark.filterwarnings("always:BxTree.btree is deprecated")
def test_btree_reach_in_warns_and_still_works():
    index = BxTree()
    with pytest.warns(DeprecationWarning, match="BxTree.btree is deprecated"):
        tree = index.btree
    assert isinstance(tree, BPlusTree)
    assert tree is index.store.tree

    flat_index = BxTree(key_store="flat")
    with pytest.warns(DeprecationWarning, match="BxTree.btree is deprecated"):
        shim = flat_index.btree
    # No inner B+-tree to hand back: the duck-compatible store surface is
    # returned so read-only reach-ins (items, range_search) keep working.
    assert shim is flat_index.store
