"""Batch-vs-sequential equivalence of the whole index stack.

The batched execution pipeline (``update_batch`` / ``range_query_batch``
through ``BxTree``, the TPR family, ``IndexManager`` and ``VPIndex``) must
be an *optimization*, not a behavior change: replaying grouped batches has
to return the same query answers as per-event replay, leave the same
objects stored, and never touch more B+-tree nodes per update.

The tests replay one real workload both ways against all four standard
indexes, plus a property-style check that shuffling the order of updates
inside a batch does not change the outcome.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import build_standard_indexes
from repro.workload.events import UpdateEvent
from repro.workload.generator import build_workload
from repro.workload.parameters import WorkloadParameters

PARAMS = WorkloadParameters(num_objects=500, time_duration=60.0, num_queries=15)

#: Window used to group events into batches (matches the harness default).
WINDOW = 1.0

INDEX_NAMES = ("Bx", "Bx(VP)", "TPR*", "TPR*(VP)")


@pytest.fixture(scope="module")
def workload():
    return build_workload("SA", PARAMS)


@pytest.fixture(scope="module")
def batches(workload):
    return workload.grouped_events(window=WINDOW)


def _build(workload, name):
    index = build_standard_indexes(workload, PARAMS, which=(name,))[name]
    index.bulk_load(workload.initial_objects)
    return index


def _replay(index, batches, mode, shuffle_seed=None):
    """Replay grouped batches; returns (per-query results, update stats)."""
    rng = random.Random(shuffle_seed) if shuffle_seed is not None else None
    stats = index.buffer.stats
    query_results = []
    update_io = 0
    update_nodes = 0
    for batch in batches:
        if isinstance(batch[0], UpdateEvent):
            pairs = [(event.old, event.new) for event in batch]
            if rng is not None:
                rng.shuffle(pairs)
            io_before = stats.physical.total
            nodes_before = stats.logical.reads
            if mode == "batch":
                index.update_batch(pairs)
            else:
                for old, new in pairs:
                    index.update(old, new)
            update_io += stats.physical.total - io_before
            update_nodes += stats.logical.reads - nodes_before
        else:
            queries = [event.query for event in batch]
            if mode == "batch":
                query_results.extend(index.range_query_batch(queries))
            else:
                query_results.extend(index.range_query(q) for q in queries)
    return query_results, update_io, update_nodes


def _stored_objects(index, name):
    """Canonical multiset of stored objects (for content comparison)."""
    if name.endswith("(VP)"):
        directory = index.manager._directory
        return sorted(
            (oid, record.partition, record.original) for oid, record in directory.items()
        )
    if name.startswith("Bx"):
        return sorted(
            (key, obj.oid, repr(obj)) for key, obj in index.btree.items()
        )
    return sorted(
        (oid, bound.rect.x_min, bound.rect.y_min, bound.reference_time)
        for oid, bound in index.iter_objects()
    )


@pytest.mark.parametrize("name", INDEX_NAMES)
def test_batch_replay_matches_sequential(workload, batches, name):
    sequential = _build(workload, name)
    batched = _build(workload, name)

    seq_queries, seq_io, seq_nodes = _replay(sequential, batches, "seq")
    bat_queries, bat_io, bat_nodes = _replay(batched, batches, "batch")

    # Identical query answers, query by query (as id sets: candidate order
    # can differ when batch insertion order changes tree internals).
    assert [sorted(r) for r in seq_queries] == [sorted(r) for r in bat_queries]
    # The Bx family additionally preserves the exact answer order (key
    # order is content-determined, independent of physical leaf layout).
    if name.startswith("Bx"):
        assert seq_queries == bat_queries

    # Identical final contents.
    assert len(sequential) == len(batched)
    assert _stored_objects(sequential, name) == _stored_objects(batched, name)

    # Update work is never worse: the shared descents of the batch path
    # strictly reduce logical node touches for the Bx family, and the TPR
    # family's space-ordered replay stays within rounding of sequential.
    if name.startswith("Bx"):
        assert bat_nodes <= seq_nodes, (bat_nodes, seq_nodes)
    else:
        assert bat_nodes <= seq_nodes * 1.05, (bat_nodes, seq_nodes)


@pytest.mark.parametrize("name", INDEX_NAMES)
def test_batch_order_within_timestamp_is_irrelevant(workload, batches, name):
    """Shuffling update pairs inside each batch must not change the outcome."""
    reference = _build(workload, name)
    shuffled = _build(workload, name)

    ref_queries, _, _ = _replay(reference, batches, "batch")
    shuf_queries, _, _ = _replay(shuffled, batches, "batch", shuffle_seed=1234)

    assert [sorted(r) for r in ref_queries] == [sorted(r) for r in shuf_queries]
    assert len(reference) == len(shuffled)

    def canonical(index):
        objs = _stored_objects(index, name)
        return objs

    assert canonical(reference) == canonical(shuffled)


def test_update_io_not_worse_at_bench_density():
    """Physical update I/O of batched replay at a disk-bound scale.

    At very small scales the LRU buffer makes physical I/O noisy in both
    directions (fewer logical touches can age pages out sooner); at the
    bench-like density used here the batch path's shared descents and
    space-ordered sweeps win outright, which is the measured claim of
    BENCH_speed.json.
    """
    params = WorkloadParameters(num_objects=1200, time_duration=60.0, num_queries=10)
    workload = build_workload("SA", params)
    batches = workload.grouped_events(window=WINDOW)
    for name in ("Bx", "Bx(VP)"):
        sequential = build_standard_indexes(workload, params, which=(name,))[name]
        sequential.bulk_load(workload.initial_objects)
        batched = build_standard_indexes(workload, params, which=(name,))[name]
        batched.bulk_load(workload.initial_objects)
        _, seq_io, _ = _replay(sequential, batches, "seq")
        _, bat_io, _ = _replay(batched, batches, "batch")
        assert bat_io <= seq_io, (name, bat_io, seq_io)


def test_frontier_pinning_never_raises_physical_io():
    """Batch replay with the buffer's sweep hints on versus off.

    Pinning the sweep frontier (plus the query sweep's sequential-eviction
    hint) is an eviction-policy improvement, not a semantics change: the
    replay must produce identical per-query answers, and total physical I/O
    — updates and queries alike — must not exceed the unhinted run on the
    bench-density workload.
    """
    params = WorkloadParameters(num_objects=1200, time_duration=60.0, num_queries=10)
    workload = build_workload("SA", params)
    batches = workload.grouped_events(window=WINDOW)
    for name in ("Bx", "Bx(VP)"):
        pinned = build_standard_indexes(workload, params, which=(name,))[name]
        pinned.bulk_load(workload.initial_objects)
        unpinned = build_standard_indexes(workload, params, which=(name,))[name]
        unpinned.buffer.batch_hints_enabled = False
        unpinned.bulk_load(workload.initial_objects)

        pin_queries, pin_update_io, _ = _replay(pinned, batches, "batch")
        base_queries, base_update_io, _ = _replay(unpinned, batches, "batch")

        assert pin_queries == base_queries, name
        assert pin_update_io <= base_update_io, (name, pin_update_io, base_update_io)
        pin_total = pinned.buffer.stats.physical.total
        base_total = unpinned.buffer.stats.physical.total
        assert pin_total <= base_total, (name, pin_total, base_total)
        # No pins may outlive their sweep.
        assert pinned.buffer.frontier_page_ids == frozenset()
