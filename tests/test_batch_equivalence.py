"""Batch-vs-sequential equivalence of the whole index stack.

The batched execution pipeline (``update_batch`` / ``range_query_batch``
through ``BxTree``, the TPR family, ``IndexManager`` and ``VPIndex``) must
be an *optimization*, not a behavior change: replaying grouped batches has
to return the same query answers as per-event replay, leave the same
objects stored, and never touch more B+-tree nodes per update.

The tests replay one real workload both ways against all four standard
indexes, plus a property-style check that shuffling the order of updates
inside a batch does not change the outcome.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import build_standard_indexes
from repro.workload.events import UpdateEvent
from repro.workload.generator import build_workload
from repro.workload.parameters import WorkloadParameters

PARAMS = WorkloadParameters(num_objects=500, time_duration=60.0, num_queries=15)

#: Window used to group events into batches (matches the harness default).
WINDOW = 1.0

INDEX_NAMES = ("Bx", "Bx(VP)", "TPR*", "TPR*(VP)")


@pytest.fixture(scope="module")
def workload():
    return build_workload("SA", PARAMS)


@pytest.fixture(scope="module")
def batches(workload):
    return workload.grouped_events(window=WINDOW)


def _build(workload, name):
    index = build_standard_indexes(workload, PARAMS, which=(name,))[name]
    index.bulk_load(workload.initial_objects)
    return index


def _replay(index, batches, mode, shuffle_seed=None):
    """Replay grouped batches; returns (per-query results, update stats)."""
    rng = random.Random(shuffle_seed) if shuffle_seed is not None else None
    stats = index.buffer.stats
    query_results = []
    update_io = 0
    update_nodes = 0
    for batch in batches:
        if isinstance(batch[0], UpdateEvent):
            pairs = [(event.old, event.new) for event in batch]
            if rng is not None:
                rng.shuffle(pairs)
            io_before = stats.physical.total
            nodes_before = stats.logical.reads
            if mode == "batch":
                index.update_batch(pairs)
            else:
                for old, new in pairs:
                    index.update(old, new)
            update_io += stats.physical.total - io_before
            update_nodes += stats.logical.reads - nodes_before
        else:
            queries = [event.query for event in batch]
            if mode == "batch":
                query_results.extend(index.range_query_batch(queries))
            else:
                query_results.extend(index.range_query(q) for q in queries)
    return query_results, update_io, update_nodes


def _stored_objects(index, name):
    """Canonical multiset of stored objects (for content comparison)."""
    if name.endswith("(VP)"):
        directory = index.manager._directory
        return sorted(
            (oid, record.partition, record.original) for oid, record in directory.items()
        )
    if name.startswith("Bx"):
        return sorted(
            (key, obj.oid, repr(obj)) for key, obj in index.store.items()
        )
    return sorted(
        (oid, bound.rect.x_min, bound.rect.y_min, bound.reference_time)
        for oid, bound in index.iter_objects()
    )


@pytest.mark.parametrize("name", INDEX_NAMES)
def test_batch_replay_matches_sequential(workload, batches, name):
    sequential = _build(workload, name)
    batched = _build(workload, name)

    seq_queries, seq_io, seq_nodes = _replay(sequential, batches, "seq")
    bat_queries, bat_io, bat_nodes = _replay(batched, batches, "batch")

    # Identical query answers, query by query (as id sets: candidate order
    # can differ when batch insertion order changes tree internals).
    assert [sorted(r) for r in seq_queries] == [sorted(r) for r in bat_queries]
    # The Bx family additionally preserves the exact answer order (key
    # order is content-determined, independent of physical leaf layout).
    if name.startswith("Bx"):
        assert seq_queries == bat_queries

    # Identical final contents.
    assert len(sequential) == len(batched)
    assert _stored_objects(sequential, name) == _stored_objects(batched, name)

    # Update work is never worse: the shared descents of the batch path
    # strictly reduce logical node touches for the Bx family, and the TPR
    # family's space-ordered replay stays within rounding of sequential.
    if name.startswith("Bx"):
        assert bat_nodes <= seq_nodes, (bat_nodes, seq_nodes)
    else:
        assert bat_nodes <= seq_nodes * 1.05, (bat_nodes, seq_nodes)


@pytest.mark.parametrize("name", INDEX_NAMES)
def test_batch_order_within_timestamp_is_irrelevant(workload, batches, name):
    """Shuffling update pairs inside each batch must not change the outcome."""
    reference = _build(workload, name)
    shuffled = _build(workload, name)

    ref_queries, _, _ = _replay(reference, batches, "batch")
    shuf_queries, _, _ = _replay(shuffled, batches, "batch", shuffle_seed=1234)

    assert [sorted(r) for r in ref_queries] == [sorted(r) for r in shuf_queries]
    assert len(reference) == len(shuffled)

    def canonical(index):
        objs = _stored_objects(index, name)
        return objs

    assert canonical(reference) == canonical(shuffled)


def test_update_io_not_worse_at_bench_density():
    """Physical update I/O of batched replay at a disk-bound scale.

    At very small scales the LRU buffer makes physical I/O noisy in both
    directions (fewer logical touches can age pages out sooner); at the
    bench-like density used here the batch path's shared descents and
    space-ordered sweeps win outright, which is the measured claim of
    BENCH_speed.json.
    """
    params = WorkloadParameters(num_objects=1200, time_duration=60.0, num_queries=10)
    workload = build_workload("SA", params)
    batches = workload.grouped_events(window=WINDOW)
    for name in ("Bx", "Bx(VP)"):
        sequential = build_standard_indexes(workload, params, which=(name,))[name]
        sequential.bulk_load(workload.initial_objects)
        batched = build_standard_indexes(workload, params, which=(name,))[name]
        batched.bulk_load(workload.initial_objects)
        _, seq_io, _ = _replay(sequential, batches, "seq")
        _, bat_io, _ = _replay(batched, batches, "batch")
        assert bat_io <= seq_io, (name, bat_io, seq_io)


def test_frontier_pinning_never_raises_physical_io():
    """Batch replay with the buffer's sweep hints on versus off.

    Pinning the sweep frontier (plus the query sweep's sequential-eviction
    hint) is an eviction-policy improvement, not a semantics change: the
    replay must produce identical per-query answers, and total physical I/O
    — updates and queries alike — must not exceed the unhinted run on the
    bench-density workload.
    """
    params = WorkloadParameters(num_objects=1200, time_duration=60.0, num_queries=10)
    workload = build_workload("SA", params)
    batches = workload.grouped_events(window=WINDOW)
    for name in ("Bx", "Bx(VP)"):
        pinned = build_standard_indexes(workload, params, which=(name,))[name]
        pinned.bulk_load(workload.initial_objects)
        unpinned = build_standard_indexes(workload, params, which=(name,))[name]
        unpinned.buffer.batch_hints_enabled = False
        unpinned.bulk_load(workload.initial_objects)

        pin_queries, pin_update_io, _ = _replay(pinned, batches, "batch")
        base_queries, base_update_io, _ = _replay(unpinned, batches, "batch")

        assert pin_queries == base_queries, name
        assert pin_update_io <= base_update_io, (name, pin_update_io, base_update_io)
        pin_total = pinned.buffer.stats.physical.total
        base_total = unpinned.buffer.stats.physical.total
        assert pin_total <= base_total, (name, pin_total, base_total)
        # No pins may outlive their sweep.
        assert pinned.buffer.frontier_page_ids == frozenset()


# ----------------------------------------------------------------------
# kNN: batched expanding-range filter versus sequential probes
# ----------------------------------------------------------------------
from repro.geometry.point import Point  # noqa: E402
from repro.geometry.vector import Vector  # noqa: E402
from repro.objects.knn import AdaptiveRadius, KNNQuery  # noqa: E402
from repro.objects.moving_object import MovingObject  # noqa: E402


def _knn_probes(workload, ks=(1, 5, 10)):
    """One kNN probe per query event, cycling through several k values.

    Probes are issued at the end of the event stream (the replayed index's
    clock) and look ahead by each event's predictive offset: an index only
    answers about the present and future of its clock, since entry bounds
    do not cover past positions.
    """
    events = workload.sorted_events()
    issue_time = events[-1].time if events else 0.0
    probes = []
    for i, event in enumerate(workload.query_events):
        query = event.query
        probes.append(
            KNNQuery(
                center=query.range.center,
                k=ks[i % len(ks)],
                query_time=issue_time + query.predictive_time,
                issue_time=issue_time,
            )
        )
    return probes


def _replayed_index(workload, batches, name):
    index = _build(workload, name)
    _replay(index, batches, "batch")
    return index


@pytest.mark.parametrize("name", INDEX_NAMES)
def test_knn_batch_matches_sequential(workload, batches, name):
    """Batched kNN answers — ids, distances and tie order — equal sequential.

    Two identically replayed indexes answer the same probes, one probe at a
    time versus one batch; the batch path's shared traversals must also
    never touch more nodes.  (Physical I/O is asserted at bench density in
    :func:`test_knn_io_not_worse_at_bench_density` — at this module's tiny
    scale LRU eviction noise can swing physical reads either way.)
    """
    sequential = _replayed_index(workload, batches, name)
    batched = _replayed_index(workload, batches, name)
    probes = _knn_probes(workload)

    stats = sequential.buffer.stats
    nodes_before = stats.logical.reads
    seq = [
        sequential.knn_query(
            p.center, p.k, p.query_time, issue_time=p.issue_time, space=PARAMS.space
        )
        for p in probes
    ]
    seq_nodes = stats.logical.reads - nodes_before

    stats = batched.buffer.stats
    nodes_before = stats.logical.reads
    bat = batched.knn_query_batch(probes, space=PARAMS.space)
    bat_nodes = stats.logical.reads - nodes_before

    assert bat == seq, name
    for answer, probe in zip(bat, probes):
        assert len(answer) <= probe.k
        distances = [d for _, d in answer]
        assert distances == sorted(distances)
    assert bat_nodes <= seq_nodes, (name, bat_nodes, seq_nodes)


def test_knn_io_not_worse_at_bench_density():
    """Batched kNN physical I/O versus sequential probes at bench density.

    This is the measured claim of ``BENCH_speed.json``: at a disk-bound
    scale the shared traversals and shared filter rounds mean the batch
    path reads no more pages than per-probe replay, for all four standard
    indexes.
    """
    params = WorkloadParameters(num_objects=1200, time_duration=60.0, num_queries=10)
    wl = build_workload("SA", params)
    probes = _knn_probes(wl, ks=(5, 10))
    for name in INDEX_NAMES:
        sequential = build_standard_indexes(wl, params, which=(name,))[name]
        sequential.bulk_load(wl.initial_objects)
        batched = build_standard_indexes(wl, params, which=(name,))[name]
        batched.bulk_load(wl.initial_objects)

        stats = sequential.buffer.stats
        io_before = stats.physical.total
        seq = [
            sequential.knn_query(
                p.center, p.k, p.query_time, issue_time=p.issue_time, space=params.space
            )
            for p in probes
        ]
        seq_io = stats.physical.total - io_before

        stats = batched.buffer.stats
        io_before = stats.physical.total
        bat = batched.knn_query_batch(probes, space=params.space)
        bat_io = stats.physical.total - io_before

        assert bat == seq, name
        assert bat_io <= seq_io, (name, bat_io, seq_io)


@pytest.mark.parametrize("name", INDEX_NAMES)
def test_knn_batch_is_shuffle_invariant(workload, batches, name):
    """Probe order within a kNN batch must not change any probe's answer."""
    index = _replayed_index(workload, batches, name)
    probes = _knn_probes(workload)
    reference = index.knn_query_batch(probes, space=PARAMS.space)
    rng = random.Random(99)
    perm = list(range(len(probes)))
    rng.shuffle(perm)
    shuffled_answers = index.knn_query_batch(
        [probes[i] for i in perm], space=PARAMS.space
    )
    unshuffled = [None] * len(probes)
    for position, original in enumerate(perm):
        unshuffled[original] = shuffled_answers[position]
    assert unshuffled == reference, name


@pytest.mark.parametrize("name", INDEX_NAMES)
def test_knn_adaptive_radius_never_changes_answers(workload, batches, name):
    """Cross-batch radius seeding is a pure perf hint: answers are invariant."""
    index = _replayed_index(workload, batches, name)
    probes = _knn_probes(workload)
    reference = index.knn_query_batch(probes, space=PARAMS.space)
    state = AdaptiveRadius()
    half = len(probes) // 2
    first = index.knn_query_batch(probes[:half], space=PARAMS.space, radius_state=state)
    assert state.unit_radius is not None
    second = index.knn_query_batch(probes[half:], space=PARAMS.space, radius_state=state)
    assert first + second == reference, name


@pytest.mark.parametrize("name", INDEX_NAMES)
def test_knn_ties_break_by_object_id(workload, name):
    """Exactly equidistant neighbours are ranked by ascending object id."""
    index = _build(workload, name)
    center = Point(50_000.0, 50_000.0)
    offsets = [(700.0, 0.0), (-700.0, 0.0), (0.0, 700.0), (0.0, -700.0)]
    tied = [
        MovingObject(
            oid=1_000_000 + i,
            position=Point(center.x + dx, center.y + dy),
            velocity=Vector(0.0, 0.0),
            reference_time=0.0,
        )
        for i, (dx, dy) in enumerate(offsets)
    ]
    for obj in tied:
        index.insert(obj)
    probe = KNNQuery(center=center, k=3, query_time=5.0)
    (batched,) = index.knn_query_batch([probe], space=PARAMS.space)
    sequential = index.knn_query(probe.center, probe.k, probe.query_time, space=PARAMS.space)
    assert batched == sequential
    assert [oid for oid, _ in batched] == [1_000_000, 1_000_001, 1_000_002]
    assert len({round(d, 6) for _, d in batched}) == 1


def test_knn_batch_matches_brute_force_after_replay(workload, batches):
    """Replayed-index batched kNN equals brute force over the live objects.

    The VP index keeps the original (unrotated) snapshot of every live
    object in its directory, which makes an exact ground truth available
    after an arbitrary update replay.
    """
    index = _replayed_index(workload, batches, "TPR*(VP)")
    probes = _knn_probes(workload)
    answers = index.knn_query_batch(probes, space=PARAMS.space)
    live = [
        record.original for record in index.manager._directory.values()
    ]
    for probe, answer in zip(probes, answers):
        ranked = sorted(
            (obj.position_at(probe.query_time).distance_to(probe.center), obj.oid)
            for obj in live
        )
        assert [oid for oid, _ in answer] == [oid for _, oid in ranked[: probe.k]]


@pytest.mark.parametrize("buffer_pages", [10, 50])
def test_knn_hints_never_raise_physical_io(buffer_pages):
    """The TPR shared traversal's buffer hints must never cost physical I/O.

    Covered at the paper's 50-page buffer and at a 10-page pressure
    configuration: unlike the Bx kNN scan (whose re-scanned *leaves* are
    what the sequential hint would evict, hence ``sequential_hint=False``
    there), the TPR traversal pins its interior path, so the hint's MRU
    victims are completed leaves while plain LRU would evict the interiors
    every next round still descends through.
    """
    params = WorkloadParameters(
        num_objects=1200, time_duration=60.0, num_queries=10, buffer_pages=buffer_pages
    )
    wl = build_workload("SA", params)
    probes = _knn_probes(wl, ks=(5, 10, 20))
    for name in ("TPR*", "TPR*(VP)"):
        hinted = build_standard_indexes(wl, params, which=(name,))[name]
        hinted.bulk_load(wl.initial_objects)
        unhinted = build_standard_indexes(wl, params, which=(name,))[name]
        unhinted.buffer.batch_hints_enabled = False
        unhinted.bulk_load(wl.initial_objects)

        hinted_answers = hinted.knn_query_batch(probes, space=params.space)
        unhinted_answers = unhinted.knn_query_batch(probes, space=params.space)

        assert hinted_answers == unhinted_answers, name
        hint_io = hinted.buffer.stats.physical.total
        base_io = unhinted.buffer.stats.physical.total
        assert hint_io <= base_io, (name, hint_io, base_io)
        # No pins may outlive the traversal.
        assert hinted.buffer.frontier_page_ids == frozenset()
