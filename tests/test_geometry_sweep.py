"""Tests for sweeping regions and the TPR cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.moving_rect import MovingRect
from repro.geometry.rect import Rect
from repro.geometry.sweep import (
    expected_node_accesses,
    sweeping_area,
    sweeping_volume,
    sweeping_volume_closed_form,
    transformed_node,
)

speed = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
extent = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestSweepingArea:
    def test_stationary_node_area_is_constant(self):
        node = MovingRect(Rect(0, 0, 2, 3), 0, 0, 0, 0)
        assert sweeping_area(node, 0.0) == pytest.approx(6.0)
        assert sweeping_area(node, 10.0) == pytest.approx(6.0)

    def test_expanding_node_area_grows_quadratically(self):
        # Unit square expanding at speed 1 on every side: (1 + 2t)^2 at time t.
        node = MovingRect(Rect(0, 0, 1, 1), -1.0, -1.0, 1.0, 1.0)
        assert sweeping_area(node, 2.0) == pytest.approx(25.0)

    def test_translating_node_sweeps_l_shape(self):
        # Unit square moving diagonally by (2, 2): bbox 3x3 minus two 2x2
        # triangles-worth (the drift term 2*2).
        node = MovingRect(Rect(0, 0, 1, 1), 2.0, 2.0, 2.0, 2.0)
        assert sweeping_area(node, 1.0) == pytest.approx(9.0 - 4.0)

    def test_negative_elapsed_raises(self):
        node = MovingRect(Rect(0, 0, 1, 1), 0, 0, 0, 0)
        with pytest.raises(ValueError):
            sweeping_area(node, -1.0)


class TestSweepingVolume:
    def test_zero_interval_is_zero(self):
        node = MovingRect(Rect(0, 0, 1, 1), -1, -1, 1, 1)
        assert sweeping_volume(node, 0.0) == 0.0

    def test_stationary_volume_is_area_times_time(self):
        node = MovingRect(Rect(0, 0, 2, 2), 0, 0, 0, 0)
        assert sweeping_volume(node, 5.0) == pytest.approx(20.0)

    def test_matches_closed_form_for_expanding_square(self):
        node = MovingRect(Rect(0, 0, 1, 1), -1.0, -1.0, 1.0, 1.0)
        # Integral of (1+2t)^2 from 0 to 3 = [ (1+2t)^3 / 6 ] = (343 - 1)/6.
        assert sweeping_volume(node, 3.0) == pytest.approx(342.0 / 6.0)

    @settings(max_examples=80, deadline=None)
    @given(extent, extent, speed, speed, speed, speed, st.floats(min_value=0.1, max_value=60.0))
    def test_closed_form_matches_numeric_integration(self, w, h, v1, v2, v3, v4, horizon):
        v_x_min, v_x_max = sorted((v1, v2))
        v_y_min, v_y_max = sorted((v3, v4))
        node = MovingRect(Rect(0.0, 0.0, w, h), v_x_min, v_y_min, v_x_max, v_y_max)
        numeric = sweeping_volume(node, horizon, steps=256)
        closed = sweeping_volume_closed_form(
            w, h, v_x_min, v_y_min, v_x_max, v_y_max, horizon
        )
        assert closed == pytest.approx(numeric, rel=1e-6, abs=1e-6)


class TestTransformedNode:
    def test_transformed_node_grows_by_half_query_extent(self):
        node = MovingRect(Rect(10, 10, 20, 20), 0, 0, 0, 0)
        query = MovingRect(Rect(0, 0, 4, 6), 0, 0, 0, 0)
        prime = transformed_node(node, query)
        assert prime.rect.as_tuple() == (8.0, 7.0, 22.0, 23.0)

    def test_transformed_node_uses_relative_velocity(self):
        node = MovingRect(Rect(0, 0, 1, 1), 1.0, 0.0, 1.0, 0.0)
        query = MovingRect(Rect(0, 0, 1, 1), 1.0, 0.0, 1.0, 0.0)
        prime = transformed_node(node, query)
        # Same velocity: the transformed node is stationary relative to the query.
        assert prime.v_x_min == 0.0
        assert prime.v_x_max == 0.0


class TestExpectedNodeAccesses:
    def test_more_nodes_means_more_accesses(self):
        query = MovingRect(Rect(0, 0, 10, 10), 0, 0, 0, 0)
        nodes_few = [MovingRect(Rect(0, 0, 5, 5), 0, 0, 0, 0)]
        nodes_many = nodes_few * 4
        few = expected_node_accesses(nodes_few, query, 10.0)
        many = expected_node_accesses(nodes_many, query, 10.0)
        assert many == pytest.approx(4 * few)

    def test_faster_nodes_cost_more(self):
        query = MovingRect(Rect(0, 0, 10, 10), 0, 0, 0, 0)
        slow = [MovingRect(Rect(0, 0, 5, 5), -1, -1, 1, 1)]
        fast = [MovingRect(Rect(0, 0, 5, 5), -10, -10, 10, 10)]
        assert expected_node_accesses(fast, query, 10.0) > expected_node_accesses(
            slow, query, 10.0
        )
