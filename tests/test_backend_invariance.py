"""Backend invariance: the flat key store is indistinguishable end to end.

Every Bx serving surface must return bit-identical answers whether the
shards run on the paged B+-tree or the flat vectorized array — unsharded
and sharded, scalar and batched, live and epoch-pinned, before and after
a WAL-replay shard recovery, and across worker processes.  The paged
backend is always the reference side of each comparison; the flat side
must match ids, distances and result order exactly (no tolerance).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_standard_indexes, knn_queries_from_workload
from repro.bxtree import BTreeKeyStore, FlatKeyStore
from repro.serve import ServeConfig, ShardedIndex
from repro.workload.events import UpdateEvent
from repro.workload.generator import build_workload
from repro.workload.parameters import WorkloadParameters

PARAMS = WorkloadParameters(num_objects=250, time_duration=30.0, num_queries=8)

SHARDS = 3

BACKENDS = ("btree", "flat")


@pytest.fixture(scope="module")
def workload():
    return build_workload("SA", PARAMS)


@pytest.fixture(scope="module")
def update_batches(workload):
    return [
        [(event.old, event.new) for event in batch]
        for batch in workload.grouped_events(window=1.0)
        if isinstance(batch[0], UpdateEvent)
    ]


@pytest.fixture(scope="module")
def queries(workload):
    return [event.query for event in workload.query_events]


@pytest.fixture(scope="module")
def probes(workload):
    return knn_queries_from_workload(workload)


def _build(workload, backend, name="Bx", shards=1, executor=None):
    return build_standard_indexes(
        workload,
        PARAMS,
        which=(name,),
        shards=shards,
        executor=executor,
        key_store=backend,
    )[name]


def _replayed_answers(index, workload, update_batches, queries, probes):
    index.bulk_load(workload.initial_objects)
    for pairs in update_batches:
        index.update_batch(pairs)
    ranges = index.range_query_batch(queries)
    knn = index.knn_query_batch(probes, space=PARAMS.space)
    return ranges, knn


# ----------------------------------------------------------------------
# Unsharded: every Bx query surface, scalar and batched
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ("Bx", "Bx(VP)"))
def test_unsharded_answers_bit_identical(
    workload, update_batches, queries, probes, name
):
    answers = {}
    for backend in BACKENDS:
        index = _build(workload, backend, name=name)
        ranges, knn = _replayed_answers(
            index, workload, update_batches, queries, probes
        )
        scalar_ranges = [index.range_query(q) for q in queries]
        answers[backend] = (ranges, scalar_ranges, knn)
    assert answers["btree"] == answers["flat"]


def test_batch_and_scalar_paths_agree_on_flat(workload, queries):
    """The flat backend's own batch/scalar surfaces must also agree."""
    index = _build(workload, "flat")
    index.bulk_load(workload.initial_objects)
    assert index.range_query_batch(queries) == [
        index.range_query(q) for q in queries
    ]


# ----------------------------------------------------------------------
# Sharded serving: executors, epoch pins, WAL recovery
# ----------------------------------------------------------------------
@pytest.mark.parametrize("executor", ("serial", "thread"))
def test_sharded_answers_bit_identical(
    workload, update_batches, queries, probes, executor
):
    answers = {}
    for backend in BACKENDS:
        with _build(workload, backend, shards=SHARDS, executor=executor) as index:
            for shard in index.shards:
                assert type(shard.store).__name__ == (
                    "FlatKeyStore" if backend == "flat" else "BTreeKeyStore"
                )
            answers[backend] = _replayed_answers(
                index, workload, update_batches, queries, probes
            )
    assert answers["btree"] == answers["flat"]


def test_process_executor_serves_flat_shards(workload, queries, probes):
    """The flat arrays must pickle into worker processes and back."""
    answers = {}
    for backend in BACKENDS:
        with _build(workload, backend, shards=2, executor="process") as index:
            index.bulk_load(workload.initial_objects)
            answers[backend] = (
                index.range_query_batch(queries),
                index.knn_query_batch(probes, space=PARAMS.space),
            )
    assert answers["btree"] == answers["flat"]


def test_epoch_pinned_cuts_bit_identical(workload, update_batches, queries, probes):
    """A pin held across the stream freezes the same cut on both backends."""
    pinned = {}
    for backend in BACKENDS:
        with _build(workload, backend, shards=SHARDS) as index:
            index.bulk_load(workload.initial_objects)
            mid = len(update_batches) // 2
            for pairs in update_batches[:mid]:
                index.update_batch(pairs)
            with index.pin() as epoch:
                frozen_ranges = index.range_query_batch(queries, epoch=epoch)
                frozen_knn = index.knn_query_batch(
                    probes, space=PARAMS.space, epoch=epoch
                )
                for pairs in update_batches[mid:]:
                    index.update_batch(pairs)
                assert index.range_query_batch(queries, epoch=epoch) == frozen_ranges
                assert (
                    index.knn_query_batch(probes, space=PARAMS.space, epoch=epoch)
                    == frozen_knn
                )
            live = index.range_query_batch(queries)
            pinned[backend] = (epoch, frozen_ranges, frozen_knn, live)
    assert pinned["btree"] == pinned["flat"]


def test_wal_recovery_preserves_backend_and_answers(
    workload, update_batches, queries, probes
):
    """A recovered shard is rebuilt on the same backend with the same data."""
    answers = {}
    for backend in BACKENDS:
        with _build(workload, backend, shards=SHARDS) as index:
            ranges, knn = _replayed_answers(
                index, workload, update_batches, queries, probes
            )
            index.recover_shard(0)
            assert type(index.shards[0].store).__name__ == (
                "FlatKeyStore" if backend == "flat" else "BTreeKeyStore"
            )
            assert index.range_query_batch(queries) == ranges
            assert index.knn_query_batch(probes, space=PARAMS.space) == knn
            answers[backend] = (ranges, knn)
    assert answers["btree"] == answers["flat"]


# ----------------------------------------------------------------------
# Configuration plumbing
# ----------------------------------------------------------------------
def test_serve_config_key_store_routes_and_merges(workload):
    config = ServeConfig(key_store="flat")
    assert config.merged(name="Bx").key_store == "flat"
    assert config.merged(key_store="btree").key_store == "btree"
    with ShardedIndex.build(
        family="Bx", shards=2, space=PARAMS.space, config=config
    ) as index:
        assert index.config.key_store == "flat"
        for shard in index.shards:
            assert isinstance(shard.store, FlatKeyStore)
        # The armed factory keeps the backend choice too.
        assert isinstance(index.shard_factory().store, FlatKeyStore)
    with ShardedIndex.build(family="Bx", shards=2, space=PARAMS.space) as index:
        for shard in index.shards:
            assert isinstance(shard.store, BTreeKeyStore)


def test_build_kwarg_overrides_config(workload):
    with ShardedIndex.build(
        family="Bx",
        shards=2,
        space=PARAMS.space,
        config=ServeConfig(key_store="btree"),
        key_store="flat",
    ) as index:
        for shard in index.shards:
            assert isinstance(shard.store, FlatKeyStore)


def test_durable_dir_requires_paged_backend(tmp_path):
    with pytest.raises(ValueError, match="paged 'btree' key store"):
        ShardedIndex.build(
            family="Bx",
            shards=2,
            durable_dir=str(tmp_path / "store"),
            key_store="flat",
        )
    # The paged default (explicit or implied) still works durably.
    with ShardedIndex.build(
        family="Bx",
        shards=2,
        durable_dir=str(tmp_path / "store"),
        key_store="btree",
    ) as index:
        assert index.num_shards == 2
