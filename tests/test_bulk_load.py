"""Bulk loading must be indistinguishable from incremental building.

For seeded workloads, a bulk-loaded index must return exactly the same
range- and kNN-query result sets as an index built by N individual
insertions, keep every structural invariant (balanced height, min/max node
fill), and behave identically under subsequent incremental updates.
"""

from __future__ import annotations

import random

import pytest

from repro.btree.bplus_tree import BPlusTree
from repro.bxtree.bx_tree import BxTree
from repro.core.partitioned_index import (
    analyze_sample,
    make_vp_bx_tree,
    make_vp_tprstar_tree,
    sample_velocities_from_objects,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.objects.knn import k_nearest_neighbors
from repro.objects.queries import (
    CircularRange,
    TimeIntervalRangeQuery,
    TimeSliceRangeQuery,
)
from repro.storage.buffer_manager import BufferManager
from repro.tprtree.tpr_tree import TPRTree
from repro.tprtree.tprstar_tree import TPRStarTree

from tests.conftest import SMALL_SPACE, brute_force_range, make_objects


def some_queries(space: Rect, seed: int = 21, count: int = 12):
    rng = random.Random(seed)
    queries = []
    for index in range(count):
        center = Point(
            rng.uniform(space.x_min, space.x_max),
            rng.uniform(space.y_min, space.y_max),
        )
        radius = rng.uniform(300.0, 1500.0)
        if index % 2:
            queries.append(
                TimeSliceRangeQuery(
                    CircularRange(center, radius), time=rng.uniform(0.0, 30.0)
                )
            )
        else:
            queries.append(
                TimeIntervalRangeQuery(
                    CircularRange(center, radius),
                    start_time=rng.uniform(0.0, 10.0),
                    end_time=rng.uniform(10.0, 40.0),
                )
            )
    return queries


def assert_equivalent_queries(bulk_index, incremental_index, objects, queries):
    """Both indexes answer every query with byte-identical result sets."""
    for query in queries:
        bulk_results = sorted(bulk_index.range_query(query))
        incremental_results = sorted(incremental_index.range_query(query))
        assert bulk_results == incremental_results
        assert set(bulk_results) == brute_force_range(objects, query)


def assert_tpr_invariants(tree: TPRTree):
    """Uniform leaf depth and min/max fill on every non-root node."""
    depths = set()

    def walk(page_id: int, depth: int):
        node = tree._node(page_id)
        if page_id != tree.root_page_id:
            assert len(node.entries) >= tree.min_entries
        assert len(node.entries) <= tree.max_entries
        if node.is_leaf:
            depths.add(depth)
            return
        for entry in node.entries:
            assert entry.child_page_id is not None
            walk(entry.child_page_id, depth + 1)

    walk(tree.root_page_id, 1)
    assert depths == {tree.height}


class TestBPlusTreeBulkLoad:
    def test_bulk_matches_incremental(self):
        rng = random.Random(5)
        items = [(rng.randint(0, 500), f"value-{i}") for i in range(800)]
        bulk = BPlusTree(page_size=512)
        bulk.bulk_load(items)
        incremental = BPlusTree(page_size=512)
        for key, value in items:
            incremental.insert(key, value)
        assert len(bulk) == len(incremental) == len(items)
        assert sorted(bulk.items()) == sorted(incremental.items())
        for key in {k for k, _ in items[:100]}:
            assert sorted(bulk.search(key)) == sorted(incremental.search(key))
        assert sorted(bulk.range_search(100, 300)) == sorted(
            incremental.range_search(100, 300)
        )

    def test_bulk_load_leaf_chain_is_key_ordered(self):
        tree = BPlusTree(leaf_capacity=4, interior_capacity=4)
        tree.bulk_load([(i * 3 % 97, i) for i in range(97)])
        keys = [key for key, _ in tree.items()]
        assert keys == sorted(keys)
        assert len(keys) == 97

    def test_updates_after_bulk_load(self):
        tree = BPlusTree(leaf_capacity=6, interior_capacity=5)
        tree.bulk_load([(i, i) for i in range(200)])
        assert tree.delete(13, 13)
        tree.insert(13, "replaced")
        assert tree.search(13) == ["replaced"]
        assert len(tree) == 200

    def test_bulk_load_requires_empty_tree(self):
        tree = BPlusTree()
        tree.insert(1, "one")
        with pytest.raises(ValueError):
            tree.bulk_load([(2, "two")])

    def test_bulk_load_empty_is_noop(self):
        tree = BPlusTree()
        tree.bulk_load([])
        assert len(tree) == 0
        assert tree.range_search(0, 10) == []


@pytest.mark.parametrize("tree_cls", [TPRTree, TPRStarTree])
class TestTPRBulkLoad:
    def build_pair(self, tree_cls, objects):
        bulk = tree_cls(buffer=BufferManager(capacity=64), page_size=1024)
        bulk.bulk_load(objects)
        incremental = tree_cls(buffer=BufferManager(capacity=64), page_size=1024)
        for obj in objects:
            incremental.insert(obj)
        return bulk, incremental

    def test_query_equivalence(self, tree_cls):
        objects = make_objects(400, seed=11)
        bulk, incremental = self.build_pair(tree_cls, objects)
        assert len(bulk) == len(incremental) == 400
        assert_equivalent_queries(
            bulk, incremental, objects, some_queries(SMALL_SPACE)
        )

    def test_structure_invariants(self, tree_cls):
        for count in (5, 37, 150, 400):
            tree = tree_cls(buffer=BufferManager(capacity=64), page_size=1024)
            tree.bulk_load(make_objects(count, seed=count))
            assert len(tree) == count
            assert_tpr_invariants(tree)

    def test_knn_equivalence(self, tree_cls):
        objects = make_objects(300, seed=13)
        by_id = {obj.oid: obj for obj in objects}
        bulk, incremental = self.build_pair(tree_cls, objects)
        for center in (Point(2_000.0, 2_000.0), Point(8_000.0, 5_000.0)):
            expected = k_nearest_neighbors(
                incremental,
                center,
                k=10,
                query_time=15.0,
                objects_by_id=by_id.get,
                space=SMALL_SPACE,
                population=len(objects),
            )
            actual = k_nearest_neighbors(
                bulk,
                center,
                k=10,
                query_time=15.0,
                objects_by_id=by_id.get,
                space=SMALL_SPACE,
                population=len(objects),
            )
            assert actual == expected

    def test_updates_after_bulk_load(self, tree_cls):
        objects = make_objects(200, seed=17)
        bulk, incremental = self.build_pair(tree_cls, objects)
        rng = random.Random(3)
        for obj in rng.sample(objects, 40):
            moved = obj.with_update(
                position=obj.position_at(20.0),
                velocity=obj.velocity,
                reference_time=20.0,
            )
            assert bulk.update(obj, moved)
            incremental.update(obj, moved)
        updated = {obj.oid: obj for obj in objects}
        assert_equivalent_queries(
            bulk,
            incremental,
            list(updated.values()),
            some_queries(SMALL_SPACE, seed=33),
        )
        assert_tpr_invariants(bulk)

    def test_bulk_load_requires_empty_tree(self, tree_cls):
        objects = make_objects(10, seed=1)
        tree = tree_cls()
        tree.insert(objects[0])
        with pytest.raises(ValueError):
            tree.bulk_load(objects[1:])


class TestBxBulkLoad:
    def build_pair(self, objects):
        bulk = BxTree(space=SMALL_SPACE, page_size=1024)
        bulk.bulk_load(objects)
        incremental = BxTree(space=SMALL_SPACE, page_size=1024)
        for obj in objects:
            incremental.insert(obj)
        return bulk, incremental

    def test_query_equivalence(self):
        objects = make_objects(400, seed=19)
        bulk, incremental = self.build_pair(objects)
        assert len(bulk) == len(incremental) == 400
        assert bulk.active_partitions == incremental.active_partitions
        assert_equivalent_queries(
            bulk, incremental, objects, some_queries(SMALL_SPACE, seed=44)
        )

    def test_histogram_matches_incremental(self):
        objects = make_objects(150, seed=23)
        bulk, incremental = self.build_pair(objects)
        assert bulk.histogram.global_extrema() == pytest.approx(
            incremental.histogram.global_extrema()
        )

    def test_updates_after_bulk_load(self):
        objects = make_objects(150, seed=29)
        bulk, incremental = self.build_pair(objects)
        rng = random.Random(7)
        for obj in rng.sample(objects, 30):
            moved = obj.with_update(
                position=obj.position_at(10.0),
                velocity=obj.velocity,
                reference_time=10.0,
            )
            assert bulk.update(obj, moved)
            incremental.update(obj, moved)
        assert_equivalent_queries(
            bulk,
            incremental,
            [],
            [],
        )
        for query in some_queries(SMALL_SPACE, seed=55):
            assert sorted(bulk.range_query(query)) == sorted(
                incremental.range_query(query)
            )

    def test_bulk_load_requires_empty_index(self):
        objects = make_objects(5, seed=2)
        tree = BxTree(space=SMALL_SPACE)
        tree.insert(objects[0])
        with pytest.raises(ValueError):
            tree.bulk_load(objects[1:])


class TestVPIndexBulkLoad:
    @pytest.mark.parametrize("kind", ["bx", "tprstar"])
    def test_query_equivalence_and_directory(self, kind):
        objects = make_objects(300, axis_aligned=True, seed=31)
        partitioning = analyze_sample(sample_velocities_from_objects(objects))

        def build(partitioning):
            if kind == "bx":
                return make_vp_bx_tree(
                    partitioning, space=SMALL_SPACE, buffer_pages=64, page_size=1024
                )
            return make_vp_tprstar_tree(
                partitioning, buffer_pages=64, page_size=1024
            )

        bulk = build(partitioning)
        bulk.bulk_load(objects)
        incremental = build(partitioning)
        for obj in objects:
            incremental.insert(obj)
        assert len(bulk) == len(incremental) == len(objects)
        assert bulk.partition_sizes() == incremental.partition_sizes()
        for oid in (0, 7, 299):
            assert bulk.manager.partition_of(oid) == incremental.manager.partition_of(
                oid
            )
        assert_equivalent_queries(
            bulk, incremental, objects, some_queries(SMALL_SPACE, seed=66)
        )
        # Updates keep working (objects may migrate partitions).
        sample = random.Random(9).sample(objects, 25)
        for obj in sample:
            moved = obj.with_update(
                position=obj.position_at(12.0),
                velocity=obj.velocity,
                reference_time=12.0,
            )
            assert bulk.update(obj, moved)
            incremental.update(obj, moved)
        for query in some_queries(SMALL_SPACE, seed=77):
            assert sorted(bulk.range_query(query)) == sorted(
                incremental.range_query(query)
            )

    def test_failed_bulk_load_leaves_directory_consistent(self):
        objects = make_objects(40, axis_aligned=True, seed=37)
        partitioning = analyze_sample(sample_velocities_from_objects(objects))
        index = make_vp_bx_tree(
            partitioning, space=SMALL_SPACE, buffer_pages=64, page_size=1024
        )
        index.bulk_load(objects[:20])
        with pytest.raises(KeyError):
            index.bulk_load(objects[10:30])  # oids 10-19 are already indexed
        # The rejected load must not have committed anything: the directory
        # still matches the sub-index contents exactly.
        assert len(index) == 20
        assert index.manager.partition_of(25) is None
        assert sum(index.partition_sizes().values()) == 20
        # Duplicate oids inside one batch are rejected up front as well.
        fresh = make_vp_bx_tree(
            partitioning, space=SMALL_SPACE, buffer_pages=64, page_size=1024
        )
        with pytest.raises(KeyError):
            fresh.bulk_load([objects[0], objects[0]])
        assert len(fresh) == 0


class TestVelocityStrPacking:
    """The velocity-binned STR strategy (``strategy="velocity_str"``)."""

    def make(self, tree_cls=TPRStarTree):
        return tree_cls(buffer=BufferManager(capacity=64), page_size=1024)

    def test_same_answers_as_midpoint(self):
        objects = make_objects(400, axis_aligned=True, seed=11)
        queries = some_queries(SMALL_SPACE, seed=31)
        for tree_cls in (TPRTree, TPRStarTree):
            midpoint = self.make(tree_cls)
            midpoint.bulk_load(objects)  # default strategy
            velocity = self.make(tree_cls)
            velocity.bulk_load(objects, strategy="velocity_str")
            assert len(velocity) == len(midpoint) == len(objects)
            assert_equivalent_queries(velocity, midpoint, objects, queries)

    def test_structure_invariants(self):
        objects = make_objects(500, axis_aligned=True, seed=13)
        tree = self.make()
        tree.bulk_load(objects, strategy="velocity_str")
        assert_tpr_invariants(tree)

    def test_unknown_strategy_raises(self):
        tree = self.make()
        with pytest.raises(ValueError):
            tree.bulk_load(make_objects(10), strategy="nope")

    def test_explicit_axes_skip_the_analyzer(self):
        from repro.geometry.vector import Vector

        objects = make_objects(300, axis_aligned=True, seed=17)
        tree = self.make()
        tree.bulk_load(
            objects, strategy="velocity_str", axes=[Vector(1.0, 0.0), Vector(0.0, 1.0)]
        )
        assert len(tree) == len(objects)
        assert_tpr_invariants(tree)

    def test_updates_keep_working_after_velocity_build(self):
        objects = make_objects(250, axis_aligned=True, seed=19)
        tree = self.make()
        tree.bulk_load(objects, strategy="velocity_str")
        moved = objects[0].with_update(
            position=objects[0].position_at(5.0),
            velocity=objects[0].velocity,
            reference_time=5.0,
        )
        assert tree.update(objects[0], moved)
        assert_tpr_invariants(tree)

    def test_vp_index_forwards_strategy(self):
        objects = make_objects(300, axis_aligned=True, seed=23)
        partitioning = analyze_sample(sample_velocities_from_objects(objects))
        midpoint = make_vp_tprstar_tree(partitioning, buffer_pages=64, page_size=1024)
        midpoint.bulk_load(objects)
        velocity = make_vp_tprstar_tree(partitioning, buffer_pages=64, page_size=1024)
        velocity.bulk_load(objects, strategy="velocity_str")
        assert len(velocity) == len(midpoint) == len(objects)
        assert_equivalent_queries(
            velocity, midpoint, objects, some_queries(SMALL_SPACE, seed=41)
        )

    def test_bx_tree_ignores_strategy_via_manager(self):
        # The Bx bulk_load has no strategy parameter; the manager must not
        # crash forwarding one to it.
        objects = make_objects(200, axis_aligned=True, seed=29)
        partitioning = analyze_sample(sample_velocities_from_objects(objects))
        index = make_vp_bx_tree(
            partitioning, space=SMALL_SPACE, buffer_pages=64, page_size=1024
        )
        index.bulk_load(objects, strategy="velocity_str")
        assert len(index) == len(objects)


class TestVelocityBins:
    def test_bins_by_nearest_axis(self):
        from repro.bulk import velocity_bins
        from repro.geometry.vector import Vector

        objects = make_objects(200, axis_aligned=True, seed=43)
        bins = velocity_bins(objects, axes=[Vector(1.0, 0.0), Vector(0.0, 1.0)])
        assert sum(len(group) for group in bins) == len(objects)
        for group, axis in zip(bins, [Vector(1.0, 0.0), Vector(0.0, 1.0)]):
            for obj in group:
                assert obj.velocity.perpendicular_distance_to_axis(axis) < 1e-9

    def test_small_input_single_bin(self):
        from repro.bulk import velocity_bins

        objects = make_objects(2, seed=47)
        assert velocity_bins(objects) == [objects]
        assert velocity_bins([]) == []

    def test_min_bin_merges_slivers(self):
        from repro.bulk import velocity_bins
        from repro.geometry.vector import Vector
        from repro.objects.moving_object import MovingObject

        objects = make_objects(47, axis_aligned=True, seed=53)
        # Three diagonal movers form a sliver bin below min_bin; it must
        # merge into the largest bin instead of producing an underfull node.
        for oid in range(47, 50):
            objects.append(
                MovingObject(
                    oid=oid,
                    position=Point(100.0 * oid, 100.0 * oid),
                    velocity=Vector(30.0, 30.0),
                    reference_time=0.0,
                )
            )
        axes = [Vector(1.0, 0.0), Vector(0.0, 1.0), Vector(1.0, 1.0)]
        unmerged = velocity_bins(objects, axes=axes, min_bin=1)
        assert sorted(len(group) for group in unmerged)[0] == 3
        bins = velocity_bins(objects, axes=axes, min_bin=5)
        assert sum(len(group) for group in bins) == len(objects)
        assert all(len(group) >= 5 for group in bins)
        assert len(bins) == len(unmerged) - 1

    def test_manager_forwards_strategy_without_axes_support(self):
        # A sub-index whose loader accepts a strategy but no precomputed
        # axes must still bulk-load cleanly (each keyword is probed
        # separately before forwarding).
        from repro.core.index_manager import IndexManager

        class StrategyOnlyIndex:
            def __init__(self):
                self.tree = TPRStarTree(buffer=BufferManager(capacity=64), page_size=1024)
                self.saw_strategy = None

            def bulk_load(self, objects, strategy="midpoint_str"):
                self.saw_strategy = strategy
                self.tree.bulk_load(objects, strategy=strategy)

            def insert(self, obj):
                self.tree.insert(obj)

            def delete(self, obj):
                return self.tree.delete(obj)

            def range_query(self, query, exact=True):
                return self.tree.range_query(query, exact=exact)

        objects = make_objects(120, axis_aligned=True, seed=59)
        partitioning = analyze_sample(sample_velocities_from_objects(objects))
        indexes = []

        def factory(partition):
            index = StrategyOnlyIndex()
            indexes.append(index)
            return index

        manager = IndexManager(partitioning, factory)
        manager.bulk_load(objects, strategy="velocity_str")
        assert len(manager) == len(objects)
        assert all(
            index.saw_strategy == "velocity_str"
            for index in indexes
            if index.saw_strategy is not None
        )
