"""Tests for the Bx-tree."""

import random

import pytest

from repro.bxtree.bx_tree import BxTree
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector
from repro.objects.moving_object import MovingObject
from repro.objects.queries import RectangularRange, TimeSliceRangeQuery
from repro.storage.buffer_manager import BufferManager

from tests.conftest import SMALL_SPACE, brute_force_range, make_circular_query, make_objects


def small_bx(**kwargs) -> BxTree:
    kwargs.setdefault("space", SMALL_SPACE)
    kwargs.setdefault("buffer", BufferManager(capacity=64))
    kwargs.setdefault("curve_order", 6)
    kwargs.setdefault("max_update_interval", 40.0)
    kwargs.setdefault("page_size", 512)
    return BxTree(**kwargs)


class TestKeying:
    def test_partition_and_label_time(self):
        tree = small_bx(num_buckets=2, max_update_interval=40.0)
        assert tree.bucket_duration == 20.0
        assert tree.partition_of(0.0) == 0
        assert tree.partition_of(19.9) == 0
        assert tree.partition_of(20.0) == 1
        assert tree.label_time(0) == 20.0
        assert tree.label_time(1) == 40.0

    def test_key_distinguishes_partitions(self):
        tree = small_bx()
        obj_a = MovingObject(1, Point(100, 100), Vector(0, 0), reference_time=0.0)
        obj_b = MovingObject(2, Point(100, 100), Vector(0, 0), reference_time=25.0)
        assert tree.key_for(obj_a) != tree.key_for(obj_b)

    def test_key_uses_label_time_position(self):
        tree = small_bx()
        still = MovingObject(1, Point(500, 500), Vector(0, 0), reference_time=0.0)
        mover = MovingObject(2, Point(500, 500), Vector(50.0, 0.0), reference_time=0.0)
        assert tree.key_for(still) != tree.key_for(mover)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            small_bx(num_buckets=0)
        with pytest.raises(ValueError):
            small_bx(max_update_interval=0.0)
        with pytest.raises(ValueError):
            small_bx(curve="unknown-curve")


class TestUpdates:
    def test_insert_delete_roundtrip(self):
        tree = small_bx()
        objects = make_objects(50, seed=1)
        for obj in objects:
            tree.insert(obj)
        assert len(tree) == 50
        for obj in objects:
            assert tree.delete(obj)
        assert len(tree) == 0
        assert tree.active_partitions == []

    def test_delete_unknown_object(self):
        tree = small_bx()
        tree.insert(MovingObject(1, Point(10, 10), Vector(0, 0)))
        assert not tree.delete(MovingObject(2, Point(10, 10), Vector(0, 0)))

    def test_update_moves_to_new_partition(self):
        tree = small_bx()
        obj = MovingObject(1, Point(100, 100), Vector(1.0, 0.0), reference_time=0.0)
        tree.insert(obj)
        new = obj.with_update(Point(200, 100), Vector(0.0, 1.0), reference_time=25.0)
        assert tree.update(obj, new)
        assert tree.partition_of(25.0) in tree.active_partitions
        assert len(tree) == 1

    def test_rebuild_histogram_reflects_live_objects(self):
        tree = small_bx()
        fast = MovingObject(1, Point(100, 100), Vector(40.0, 0.0))
        slow = MovingObject(2, Point(200, 200), Vector(1.0, 0.0))
        tree.insert(fast)
        tree.insert(slow)
        tree.delete(fast)
        tree.rebuild_histogram()
        assert tree.histogram.global_extrema()[2] == pytest.approx(1.0)


class TestQueries:
    def test_matches_brute_force_time_slice(self):
        tree = small_bx()
        objects = make_objects(150, seed=3, max_speed=40.0)
        for obj in objects:
            tree.insert(obj)
        rng = random.Random(5)
        for _ in range(15):
            center = Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
            query = make_circular_query(center, 1500.0, time=rng.uniform(0, 30))
            assert set(tree.range_query(query)) == brute_force_range(objects, query)

    def test_matches_brute_force_after_updates(self):
        tree = small_bx()
        rng = random.Random(13)
        objects = {obj.oid: obj for obj in make_objects(100, seed=7, max_speed=30.0)}
        for obj in objects.values():
            tree.insert(obj)
        for time in (10.0, 25.0, 35.0):
            for oid in rng.sample(sorted(objects), 30):
                old = objects[oid]
                new = MovingObject(
                    oid,
                    old.position_at(time),
                    Vector(rng.uniform(-30, 30), rng.uniform(-30, 30)),
                    time,
                )
                tree.update(old, new)
                objects[oid] = new
        for _ in range(10):
            center = Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
            query = make_circular_query(center, 1500.0, time=rng.uniform(35, 60), issue_time=35.0)
            assert set(tree.range_query(query)) == brute_force_range(
                list(objects.values()), query
            )

    def test_rectangular_query(self):
        tree = small_bx()
        objects = make_objects(120, seed=9, max_speed=30.0)
        for obj in objects:
            tree.insert(obj)
        query = TimeSliceRangeQuery(
            RectangularRange(Rect(2000, 2000, 5000, 5000)), time=15.0
        )
        assert set(tree.range_query(query)) == brute_force_range(objects, query)

    def test_query_empty_tree(self):
        tree = small_bx()
        query = make_circular_query(Point(100, 100), 50.0, time=5.0)
        assert tree.range_query(query) == []

    def test_candidate_set_is_superset_of_exact(self):
        tree = small_bx()
        objects = make_objects(80, seed=15, max_speed=30.0)
        for obj in objects:
            tree.insert(obj)
        query = make_circular_query(Point(5000, 5000), 2000.0, time=20.0)
        assert set(tree.range_query(query, exact=True)) <= set(
            tree.range_query(query, exact=False)
        )

    def test_enlargement_grows_with_predictive_time(self):
        tree = small_bx()
        for obj in make_objects(100, seed=17, max_speed=40.0):
            tree.insert(obj)
        # Objects live in partition 0, whose label time is 20: a query at
        # t=21 is 1 ts away from the label, a query at t=39 is 19 ts away.
        near = make_circular_query(Point(5000, 5000), 500.0, time=21.0)
        far = make_circular_query(Point(5000, 5000), 500.0, time=39.0)
        partition = tree.active_partitions[0]
        assert tree.enlarged_window(far, partition).area >= tree.enlarged_window(
            near, partition
        ).area

    def test_z_curve_variant_answers_correctly(self):
        tree = small_bx(curve="z")
        objects = make_objects(100, seed=19, max_speed=30.0)
        for obj in objects:
            tree.insert(obj)
        query = make_circular_query(Point(4000, 6000), 1800.0, time=12.0)
        assert set(tree.range_query(query)) == brute_force_range(objects, query)

    def test_queries_cost_io(self):
        tree = small_bx(buffer=BufferManager(capacity=4))
        for obj in make_objects(200, seed=23, max_speed=40.0):
            tree.insert(obj)
        before = tree.buffer.stats.physical.reads
        tree.range_query(make_circular_query(Point(5000, 5000), 2500.0, time=30.0))
        assert tree.buffer.stats.physical.reads > before
