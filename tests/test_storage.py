"""Tests for the simulated storage layer: pages, disk manager, buffer, stats."""

import pytest

from repro.storage.buffer_manager import BufferManager, BufferPoolFullError
from repro.storage.disk_manager import DiskManager
from repro.storage.page import PAGE_SIZE_BYTES, Page, entries_per_page
from repro.storage.stats import Counter, IOStats


class TestPage:
    def test_default_size_is_4kb(self):
        assert PAGE_SIZE_BYTES == 4096
        assert Page(page_id=0).size_bytes == 4096

    def test_pin_unpin(self):
        page = Page(page_id=1)
        page.pin()
        assert page.is_pinned
        page.unpin()
        assert not page.is_pinned

    def test_unpin_without_pin_raises(self):
        with pytest.raises(ValueError):
            Page(page_id=1).unpin()

    def test_entries_per_page(self):
        assert entries_per_page(80) == (4096 - 32) // 80
        assert entries_per_page(56, page_size_bytes=1024) == (1024 - 32) // 56

    def test_entries_per_page_minimum_fanout(self):
        assert entries_per_page(100_000) == 2

    def test_entries_per_page_invalid(self):
        with pytest.raises(ValueError):
            entries_per_page(0)
        with pytest.raises(ValueError):
            entries_per_page(10, header_bytes=64, page_size_bytes=64)


class TestDiskManager:
    def test_allocate_read_write(self):
        disk = DiskManager()
        page = disk.allocate(payload={"a": 1})
        assert page.page_id in disk
        fetched = disk.read(page.page_id)
        assert fetched.payload == {"a": 1}
        disk.write(fetched)
        assert disk.stats.physical.reads == 1
        assert disk.stats.physical.writes == 1

    def test_free_recycles_ids(self):
        disk = DiskManager()
        page = disk.allocate()
        disk.free(page.page_id)
        new_page = disk.allocate()
        assert new_page.page_id == page.page_id

    def test_read_missing_raises(self):
        with pytest.raises(KeyError):
            DiskManager().read(42)

    def test_free_missing_raises(self):
        with pytest.raises(KeyError):
            DiskManager().free(42)

    def test_len_counts_pages(self):
        disk = DiskManager()
        disk.allocate()
        disk.allocate()
        assert len(disk) == 2


class TestBufferManager:
    def test_hit_does_not_touch_disk(self):
        buffer = BufferManager(capacity=4)
        page = buffer.new_page("payload")
        reads_before = buffer.stats.physical.reads
        fetched = buffer.fetch(page.page_id)
        assert fetched.payload == "payload"
        assert buffer.stats.physical.reads == reads_before
        assert buffer.hits == 1

    def test_miss_reads_from_disk(self):
        buffer = BufferManager(capacity=2)
        pages = [buffer.new_page(i) for i in range(5)]  # forces evictions
        buffer.fetch(pages[0].page_id)
        assert buffer.stats.physical.reads >= 1
        assert buffer.misses >= 1

    def test_lru_eviction_order(self):
        buffer = BufferManager(capacity=2)
        a = buffer.new_page("a")
        b = buffer.new_page("b")
        buffer.fetch(a.page_id)  # a becomes most recent
        buffer.new_page("c")  # evicts b
        assert a.page_id in buffer
        assert b.page_id not in buffer

    def test_dirty_page_written_back_on_eviction(self):
        buffer = BufferManager(capacity=1)
        a = buffer.new_page("a")
        buffer.mark_dirty(buffer.fetch(a.page_id))
        buffer.new_page("b")  # evicts dirty a -> physical write
        assert buffer.stats.physical.writes >= 1

    def test_pinned_pages_not_evicted(self):
        buffer = BufferManager(capacity=1)
        a = buffer.new_page("a")
        buffer.fetch(a.page_id).pin()
        with pytest.raises(BufferPoolFullError):
            buffer.new_page("b")

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BufferManager(capacity=0)

    def test_flush_writes_dirty_pages(self):
        buffer = BufferManager(capacity=4)
        buffer.new_page("a")
        buffer.flush()
        assert buffer.stats.physical.writes >= 1

    def test_shared_stats_with_external_disk(self):
        disk = DiskManager()
        buffer = BufferManager(disk=disk, capacity=2)
        assert buffer.stats is disk.stats

    def test_conflicting_disk_and_stats_raises(self):
        disk = DiskManager()
        with pytest.raises(ValueError):
            BufferManager(disk=disk, capacity=2, stats=IOStats())

    def test_explicit_stats_matching_disk_is_honored(self):
        disk = DiskManager()
        buffer = BufferManager(disk=disk, capacity=2, stats=disk.stats)
        assert buffer.stats is disk.stats
        page = buffer.new_page("a")
        buffer.clear()
        buffer.fetch(page.page_id)
        # Every physical read lands on the one shared stats object, once.
        assert buffer.stats.physical.reads == 1

    def test_explicit_stats_without_disk_records_physical_io(self):
        stats = IOStats()
        buffer = BufferManager(capacity=2, stats=stats)
        assert buffer.stats is stats
        assert buffer.disk.stats is stats
        page = buffer.new_page("a")
        buffer.clear()
        buffer.fetch(page.page_id)
        assert stats.physical.reads == 1

    def test_hit_ratio(self):
        buffer = BufferManager(capacity=4)
        page = buffer.new_page("a")
        buffer.fetch(page.page_id)
        buffer.fetch(page.page_id)
        assert buffer.hit_ratio == 1.0

    def test_free_page_removes_everywhere(self):
        buffer = BufferManager(capacity=4)
        page = buffer.new_page("a")
        buffer.free_page(page.page_id)
        assert page.page_id not in buffer
        assert page.page_id not in buffer.disk


class TestBufferPinning:
    def test_pin_fetches_and_survives_pressure(self):
        buffer = BufferManager(capacity=2)
        page = buffer.new_page("keep")
        buffer.pin(page.page_id)
        for index in range(5):
            buffer.new_page(f"filler-{index}")
        assert page.page_id in buffer, "pinned pages are never evicted"
        buffer.unpin(page.page_id)
        buffer.new_page("evicts-now")
        buffer.new_page("evicts-now-2")
        assert page.page_id not in buffer

    def test_unpin_underflow_raises(self):
        buffer = BufferManager(capacity=2)
        page = buffer.new_page("a")
        buffer.pin(page.page_id)
        buffer.unpin(page.page_id)
        with pytest.raises(ValueError):
            buffer.unpin(page.page_id)

    def test_unpin_non_resident_raises(self):
        buffer = BufferManager(capacity=2)
        with pytest.raises(KeyError):
            buffer.unpin(42)

    def test_pin_frontier_replaces_set(self):
        buffer = BufferManager(capacity=12)
        pages = [buffer.new_page(i) for i in range(3)]
        buffer.pin_frontier([pages[0].page_id, pages[1].page_id])
        assert pages[0].is_pinned and pages[1].is_pinned
        buffer.pin_frontier([pages[1].page_id, pages[2].page_id])
        assert not pages[0].is_pinned, "pages leaving the frontier are unpinned"
        assert pages[1].is_pinned and pages[2].is_pinned
        buffer.release_frontier()
        assert not any(page.is_pinned for page in pages)

    def test_pin_frontier_ignores_non_resident_and_never_fetches(self):
        buffer = BufferManager(capacity=2)
        page = buffer.new_page("a")
        for index in range(3):
            buffer.new_page(index)  # evicts "a"
        reads_before = buffer.stats.physical.reads
        buffer.pin_frontier([page.page_id])
        assert buffer.stats.physical.reads == reads_before
        assert buffer.frontier_page_ids == frozenset()

    def test_pin_frontier_respects_capacity_headroom(self):
        buffer = BufferManager(capacity=6)
        pages = [buffer.new_page(i) for i in range(5)]
        buffer.pin_frontier([page.page_id for page in pages])
        # capacity - 4 = 2 frames may be pinned, never more.
        assert len(buffer.frontier_page_ids) == 2
        buffer.release_frontier()

    def test_frontier_page_freed_mid_sweep_is_unpinned(self):
        buffer = BufferManager(capacity=12)
        page = buffer.new_page("a")
        buffer.pin_frontier([page.page_id])
        buffer.free_page(page.page_id)
        assert buffer.frontier_page_ids == frozenset()
        assert not page.is_pinned

    def test_batch_hints_can_be_disabled(self):
        buffer = BufferManager(capacity=12)
        buffer.batch_hints_enabled = False
        page = buffer.new_page("a")
        buffer.pin_frontier([page.page_id])
        assert not page.is_pinned
        buffer.advise_sequential(True)
        assert buffer._sequential_depth == 0

    def test_sequential_hint_prefers_recent_clean_victim(self):
        buffer = BufferManager(capacity=2)
        old = buffer.new_page("old")
        recent = buffer.new_page("recent")
        buffer.flush()  # both pages clean
        buffer.fetch(old.page_id)
        buffer.fetch(recent.page_id)  # LRU victim would be `old`
        buffer.advise_sequential(True)
        try:
            buffer.new_page("filler")
            assert old.page_id in buffer, "sequential eviction spares older pages"
            assert recent.page_id not in buffer
        finally:
            buffer.advise_sequential(False)

    def test_sequential_hint_leaves_dirty_pages_to_lru(self):
        buffer = BufferManager(capacity=2)
        old = buffer.new_page("old")
        recent = buffer.new_page("recent")
        buffer.flush()
        buffer.fetch(old.page_id)
        buffer.mark_dirty(buffer.fetch(recent.page_id))  # MRU but dirty
        buffer.advise_sequential(True)
        try:
            writes_before = buffer.stats.physical.writes
            buffer.new_page("filler")
            # The dirty MRU page is spared; plain LRU evicts the clean old
            # page with no eager write-back.
            assert recent.page_id in buffer
            assert old.page_id not in buffer
            assert buffer.stats.physical.writes == writes_before
        finally:
            buffer.advise_sequential(False)

    def test_buffer_hit_miss_recorded_in_stats(self):
        buffer = BufferManager(capacity=2)
        page = buffer.new_page("a")
        buffer.fetch(page.page_id)  # hit
        for index in range(3):
            buffer.new_page(index)  # evict "a"
        buffer.fetch(page.page_id)  # miss
        assert buffer.stats.buffer.hits == buffer.hits == 1
        assert buffer.stats.buffer.misses == buffer.misses == 1
        assert buffer.stats.as_dict()["buffer"] == {"hits": 1, "misses": 1}

    def test_buffer_stats_scope_attribution(self):
        buffer = BufferManager(capacity=2)
        page = buffer.new_page("a")
        with buffer.stats.scope("query"):
            buffer.fetch(page.page_id)
        buffer.fetch(page.page_id)
        assert buffer.stats.buffer_scoped("query").hits == 1
        assert buffer.stats.buffer.hits == 2


class TestIOStats:
    def test_counter_arithmetic(self):
        a = Counter(reads=5, writes=2)
        b = Counter(reads=3, writes=1)
        diff = a - b
        assert diff.reads == 2 and diff.writes == 1
        assert a.total == 7

    def test_scope_attributes_io(self):
        stats = IOStats()
        with stats.scope("query"):
            stats.record_physical_read(3)
        stats.record_physical_read(1)
        assert stats.scoped("query").reads == 3
        assert stats.physical.reads == 4

    def test_nested_scope_raises(self):
        stats = IOStats()
        with stats.scope("outer"):
            with pytest.raises(RuntimeError):
                with stats.scope("inner"):
                    pass

    def test_reset(self):
        stats = IOStats()
        stats.record_physical_read()
        stats.record_logical_write()
        stats.reset()
        assert stats.physical.total == 0
        assert stats.logical.total == 0

    def test_as_dict(self):
        stats = IOStats()
        stats.record_physical_write(2)
        snapshot = stats.as_dict()
        assert snapshot["physical"]["writes"] == 2
