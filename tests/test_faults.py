"""Chaos suite: fault injection, supervision, recovery, degraded answers.

Pins the robustness contracts of ``docs/robustness.md``:

* the four fault families of :class:`FaultInjectingDiskManager` fire
  deterministically from seeded/scheduled profiles;
* :class:`BufferManager` survives any injected fault with its pool
  invariants intact — a failed fetch retries cleanly;
* the shard supervisor retries transient query faults with a
  deterministic backoff schedule, trips per-shard circuit breakers, and
  recovers failed shards by replaying their write-ahead log — after
  which answers are **bit-identical** to a never-failed index;
* ``partial=True`` queries degrade instead of raising, and
  ``PartialResult.complete`` holds iff no shard failed.

``CHAOS_SEED`` (environment) reseeds the end-to-end chaos runs; CI runs
the suite under three published seeds.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.bench.harness import build_standard_indexes
from repro.objects.knn import KNNQuery
from repro.serve import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    SHARD_SKIPPED,
    CircuitBreaker,
    PartialResult,
    RetryPolicy,
    ServeConfig,
    ShardedIndex,
    ShardFailedError,
    ShardLog,
    SupervisorConfig,
    shard_of,
)
from repro.storage import (
    BufferManager,
    FaultInjectingDiskManager,
    FaultProfile,
    PageReadError,
    PageWriteError,
    ShardDownError,
    fault_wrap,
)
from repro.workload.events import UpdateEvent
from repro.workload.generator import build_workload
from repro.workload.parameters import WorkloadParameters

#: Seed of the end-to-end chaos runs; CI publishes three values.
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

PARAMS = WorkloadParameters(num_objects=400, time_duration=40.0, num_queries=12)

WINDOW = 1.0

NUM_SHARDS = 4


@pytest.fixture(scope="module")
def workload():
    return build_workload("SA", PARAMS)


@pytest.fixture(scope="module")
def batches(workload):
    return workload.grouped_events(window=WINDOW)


class FakeClock:
    """A manually advanced monotonic clock for breaker/backoff tests."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class FakeSleep:
    """Records requested delays instead of sleeping."""

    def __init__(self):
        self.delays = []

    def __call__(self, seconds):
        self.delays.append(seconds)


def _supervisor(**overrides):
    """A test supervisor: fake sleep (no real delays) unless overridden."""
    defaults = dict(sleep=FakeSleep())
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def _build(workload, shards=1, supervisor=None, name="Bx"):
    index = build_standard_indexes(
        workload, PARAMS, which=(name,), shards=shards, supervisor=supervisor
    )[name]
    index.bulk_load(workload.initial_objects)
    return index


def _knn_probes(workload, ks=(1, 5, 10)):
    events = workload.sorted_events()
    issue_time = events[-1].time if events else 0.0
    return [
        KNNQuery(
            center=event.query.range.center,
            k=ks[i % len(ks)],
            query_time=issue_time + event.query.predictive_time,
            issue_time=issue_time,
        )
        for i, event in enumerate(workload.query_events)
    ]


# ----------------------------------------------------------------------
# Fault injector: the four families, deterministically
# ----------------------------------------------------------------------
def test_fault_profile_validation():
    with pytest.raises(ValueError):
        FaultProfile(read_error_rate=1.5)
    with pytest.raises(ValueError):
        FaultProfile(write_error_rate=-0.1)
    with pytest.raises(ValueError):
        FaultProfile(page_fault_times=-1)


def test_scheduled_read_fault_fires_once():
    disk = FaultInjectingDiskManager(profile=FaultProfile(fail_reads_at=frozenset({1})))
    page = disk.allocate("payload")
    assert disk.read(page.page_id).payload == "payload"  # read #0: clean
    with pytest.raises(PageReadError):
        disk.read(page.page_id)  # read #1: scheduled fault
    assert disk.read(page.page_id).payload == "payload"  # read #2: clean again
    assert disk.counters.read_errors == 1
    # The failed attempt never reached the platter.
    assert disk.stats.physical.reads == 2


def test_page_trigger_fires_exactly_n_times():
    disk = FaultInjectingDiskManager(
        profile=FaultProfile(fail_read_pages=frozenset({0}), page_fault_times=2)
    )
    target = disk.allocate("x")
    assert target.page_id == 0  # fresh disks allocate from id 0
    for _ in range(2):
        with pytest.raises(PageReadError):
            disk.read(target.page_id)
    assert disk.read(target.page_id).payload == "x"
    assert disk.counters.read_errors == 2


def test_write_fault_is_transient_and_page_stays_dirty():
    disk = FaultInjectingDiskManager(
        profile=FaultProfile(fail_write_pages=frozenset({0}))
    )
    page = disk.allocate("x")
    page.mark_dirty()
    with pytest.raises(PageWriteError):
        disk.write(page)
    assert page.dirty  # the failed write-back did not clear the flag
    disk.write(page)  # the page trigger fired once; retry succeeds
    assert not page.dirty
    assert disk.counters.write_errors == 1
    assert disk.stats.physical.writes == 1


def test_probability_faults_are_seed_deterministic():
    def failure_ordinals(seed):
        disk = FaultInjectingDiskManager(
            profile=FaultProfile(seed=seed, read_error_rate=0.3)
        )
        page = disk.allocate("x")
        ordinals = []
        for i in range(200):
            try:
                disk.read(page.page_id)
            except PageReadError:
                ordinals.append(i)
        return ordinals

    first = failure_ordinals(1337)
    assert first == failure_ordinals(1337)  # same seed, same schedule
    assert first  # the rate actually fires
    assert first != failure_ordinals(20260808)


def test_injected_latency_goes_through_injected_sleep():
    sleep = FakeSleep()
    disk = FaultInjectingDiskManager(
        profile=FaultProfile(read_latency_s=0.25, write_latency_s=0.5), sleep=sleep
    )
    page = disk.allocate("x")
    disk.read(page.page_id)
    page.mark_dirty()
    disk.write(page)
    assert sleep.delays == [0.25, 0.5]
    assert disk.counters.injected_latency_s == pytest.approx(0.75)


def test_kill_switch_and_revive():
    disk = FaultInjectingDiskManager()
    page = disk.allocate("x")
    disk.kill()
    assert disk.is_down
    with pytest.raises(ShardDownError):
        disk.read(page.page_id)
    page.mark_dirty()
    with pytest.raises(ShardDownError):
        disk.write(page)
    assert disk.counters.down_errors == 2
    disk.revive()
    assert disk.read(page.page_id).payload == "x"


def test_scheduled_kill_fires_at_op_ordinal():
    disk = FaultInjectingDiskManager(profile=FaultProfile(kill_at_op=2))
    page = disk.allocate("x")
    disk.read(page.page_id)  # op 0
    disk.read(page.page_id)  # op 1
    with pytest.raises(ShardDownError):
        disk.read(page.page_id)  # op 2: the worker dies mid-stream
    assert disk.is_down


# ----------------------------------------------------------------------
# Fault-profile interplay: composed trigger families on the same ops
# ----------------------------------------------------------------------
def test_latency_stops_once_scheduled_kill_fires():
    """A dead worker injects no latency: down-check precedes the delay."""
    sleep = FakeSleep()
    disk = FaultInjectingDiskManager(
        profile=FaultProfile(read_latency_s=0.25, write_latency_s=0.5, kill_at_op=3),
        sleep=sleep,
    )
    page = disk.allocate("x")
    disk.read(page.page_id)  # op 0: 0.25s
    page.mark_dirty()
    disk.write(page)  # op 1: 0.5s
    disk.read(page.page_id)  # op 2: 0.25s
    with pytest.raises(ShardDownError):
        disk.read(page.page_id)  # op 3: dies before any delay
    page.mark_dirty()
    with pytest.raises(ShardDownError):
        disk.write(page)  # still down, still no delay
    assert sleep.delays == [0.25, 0.5, 0.25]
    assert disk.counters.injected_latency_s == pytest.approx(1.0)
    assert disk.counters.down_errors == 2
    # Revival does not outlast the schedule: the op counter already sits
    # past kill_at_op, so the very next attempt re-kills (and the shard
    # pays no latency for it either).
    disk.revive()
    with pytest.raises(ShardDownError):
        disk.read(page.page_id)
    assert sleep.delays == [0.25, 0.5, 0.25]


def test_page_trigger_short_circuit_preserves_probability_schedule():
    """Page-targeted and probability faults composed on the same reads.

    The trigger chain short-circuits: an attempt failed by the page
    trigger never consumes an RNG sample, so the probability family's
    failure schedule is the rate-only schedule shifted by exactly the
    number of page-trigger firings — mixing trigger families never
    perturbs the seeded schedule.
    """

    def rate_only_ordinals(attempts):
        disk = FaultInjectingDiskManager(
            profile=FaultProfile(seed=1337, read_error_rate=0.35)
        )
        page = disk.allocate("x")
        ordinals = []
        for i in range(attempts):
            try:
                disk.read(page.page_id)
            except PageReadError:
                ordinals.append(i)
        return ordinals

    mixed = FaultInjectingDiskManager(
        profile=FaultProfile(
            seed=1337,
            read_error_rate=0.35,
            fail_read_pages=frozenset({0}),
            page_fault_times=2,
        )
    )
    page = mixed.allocate("x")
    assert page.page_id == 0
    mixed_ordinals = []
    for i in range(202):
        try:
            mixed.read(page.page_id)
        except PageReadError:
            mixed_ordinals.append(i)
    # The first two attempts fail from the page trigger alone...
    assert mixed_ordinals[:2] == [0, 1]
    # ...and every later failure is the rate-only schedule, shifted by 2.
    assert mixed_ordinals[2:] == [o + 2 for o in rate_only_ordinals(200)]
    assert mixed.counters.read_errors == len(mixed_ordinals)


def test_scheduled_and_page_write_triggers_fire_separately_on_same_op():
    """An op matching two trigger families burns only the first trigger.

    Write attempt 0 matches both ``fail_writes_at`` and the page trigger;
    the or-chain raises on the scheduled ordinal first and short-circuits,
    leaving the page trigger's budget intact — so it fires on the *next*
    attempt, and the attempt after that succeeds.
    """
    disk = FaultInjectingDiskManager(
        profile=FaultProfile(
            fail_writes_at=frozenset({0}),
            fail_write_pages=frozenset({0}),
            page_fault_times=1,
        )
    )
    page = disk.allocate("x")
    page.mark_dirty()
    with pytest.raises(PageWriteError):
        disk.write(page)  # write 0: scheduled ordinal (page budget intact)
    with pytest.raises(PageWriteError):
        disk.write(page)  # write 1: page trigger spends its one firing
    disk.write(page)  # write 2: both families exhausted
    assert disk.counters.write_errors == 2
    assert not page.dirty


# ----------------------------------------------------------------------
# BufferManager: pool invariants under injected faults
# ----------------------------------------------------------------------
def test_fetch_read_fault_leaves_pool_untouched_and_retries_cleanly():
    disk = FaultInjectingDiskManager(
        profile=FaultProfile(fail_read_pages=frozenset({0}))
    )
    buffer = BufferManager(disk=disk, capacity=4)
    page = disk.allocate("victim-of-fate")
    assert page.page_id == 0
    misses_before = buffer.misses
    reads_before = buffer.stats.physical.reads
    with pytest.raises(PageReadError):
        buffer.fetch(page.page_id)
    # No half-admitted frame: the pool does not contain the page.
    assert page.page_id not in buffer
    assert len(buffer) == 0
    # Retry succeeds; the failed attempt cost exactly one extra miss and
    # no physical read.
    fetched = buffer.fetch(page.page_id)
    assert fetched.payload == "victim-of-fate"
    assert page.page_id in buffer
    assert buffer.misses == misses_before + 2
    assert buffer.stats.physical.reads == reads_before + 1


def test_eviction_write_fault_keeps_victim_resident_and_dirty():
    disk = FaultInjectingDiskManager(
        profile=FaultProfile(fail_write_pages=frozenset({0}))
    )
    buffer = BufferManager(disk=disk, capacity=1)
    victim = buffer.new_page("dirty-resident")
    assert victim.page_id == 0
    incoming = disk.allocate("incoming")
    with pytest.raises(PageWriteError):
        buffer.fetch(incoming.page_id)
    # The eviction failed mid write-back: the victim is still resident,
    # still dirty, and the incoming page was never admitted.
    assert victim.page_id in buffer
    assert buffer.resident_page(victim.page_id).dirty
    assert incoming.page_id not in buffer
    assert len(buffer) == 1
    # The page trigger is exhausted, so the retry completes the eviction.
    fetched = buffer.fetch(incoming.page_id)
    assert fetched.payload == "incoming"
    assert victim.page_id not in buffer
    assert len(buffer) == 1


def test_new_page_eviction_fault_allocates_no_orphan():
    disk = FaultInjectingDiskManager(
        profile=FaultProfile(fail_write_pages=frozenset({0}))
    )
    buffer = BufferManager(disk=disk, capacity=1)
    victim = buffer.new_page("dirty")
    assert victim.page_id == 0
    allocated_before = len(disk)
    with pytest.raises(PageWriteError):
        buffer.new_page("never-born")
    # Room is made before allocation, so the failed call left no orphan
    # page on disk.
    assert len(disk) == allocated_before
    page = buffer.new_page("born-on-retry")
    assert page.payload == "born-on-retry"


# ----------------------------------------------------------------------
# Retry policy: deterministic backoff schedule
# ----------------------------------------------------------------------
def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)


def test_backoff_schedule_is_a_pure_function_of_seed():
    policy = RetryPolicy(
        max_attempts=6, base_delay_s=0.01, multiplier=2.0, max_delay_s=0.05, jitter=0.2
    )
    delays = [policy.backoff_delay(i, random.Random(7)) for i in range(5)]
    # Recomputing with a fresh, identically seeded RNG reproduces the
    # schedule exactly.
    assert delays == [policy.backoff_delay(i, random.Random(7)) for i in range(5)]
    for i, delay in enumerate(delays):
        bare = min(0.01 * 2.0**i, 0.05)
        assert bare <= delay <= bare * 1.2


def test_backoff_without_jitter_is_exact():
    policy = RetryPolicy(base_delay_s=0.01, multiplier=3.0, max_delay_s=1.0, jitter=0.0)
    rng = random.Random(0)
    assert policy.backoff_delay(0, rng) == pytest.approx(0.01)
    assert policy.backoff_delay(1, rng) == pytest.approx(0.03)
    assert policy.backoff_delay(2, rng) == pytest.approx(0.09)


# ----------------------------------------------------------------------
# Circuit breaker: state machine under a fake clock
# ----------------------------------------------------------------------
def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(reset_timeout_s=-1.0)


def test_breaker_trips_only_on_consecutive_failures():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0, clock=clock)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()  # the streak resets
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED
    breaker.record_failure()  # third consecutive failure trips it
    assert breaker.state == BREAKER_OPEN
    assert not breaker.allow()


def test_breaker_half_open_probe_success_closes():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0, clock=clock)
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    clock.advance(4.999)
    assert not breaker.allow()  # still cooling down
    clock.advance(0.001)
    assert breaker.state == BREAKER_HALF_OPEN
    assert breaker.allow()  # exactly one probe is admitted
    assert not breaker.allow()  # concurrent callers are refused
    breaker.record_success()
    assert breaker.state == BREAKER_CLOSED
    assert breaker.allow()


def test_breaker_half_open_probe_failure_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0, clock=clock)
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()  # the probe
    breaker.record_failure()  # probe failed: re-open, restart cool-down
    assert breaker.state == BREAKER_OPEN
    assert not breaker.allow()
    clock.advance(5.0)
    assert breaker.state == BREAKER_HALF_OPEN  # cools down again


def test_breaker_reset_force_closes():
    breaker = CircuitBreaker(failure_threshold=1)
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    breaker.reset()
    assert breaker.state == BREAKER_CLOSED


# ----------------------------------------------------------------------
# Shard log (WAL) semantics
# ----------------------------------------------------------------------
def test_shard_log_rejects_unknown_ops_and_freezes_payloads(workload):
    log = ShardLog()
    with pytest.raises(ValueError):
        log.append("compact", [])
    batch = list(workload.initial_objects[:3])
    log.append("insert_batch", batch)
    batch.clear()  # mutating the caller's list must not corrupt the log
    op, payload = log.records[0]
    assert op == "insert_batch"
    assert len(payload) == 3


def test_shard_log_replay_rebuilds_and_returns_last_result(workload):
    objects = list(workload.initial_objects[:20])
    log = ShardLog()
    log.append("bulk_load", (objects[:10], None))
    log.append("insert_batch", objects[10:])
    log.append("delete", objects[0])
    replica = build_standard_indexes(workload, PARAMS, which=("Bx",))["Bx"]
    result = log.replay(replica)
    assert result is True  # delete() of a present object
    assert len(replica) == 19


# ----------------------------------------------------------------------
# ShardedIndex supervision: lifecycle and guard rails
# ----------------------------------------------------------------------
def test_sharded_index_rejects_empty_and_bad_worker_counts(workload):
    with pytest.raises(ValueError):
        ShardedIndex([])
    shard = build_standard_indexes(workload, PARAMS, which=("Bx",))["Bx"]
    with pytest.raises(ValueError):
        ShardedIndex([shard], ServeConfig(max_workers=0))


def test_close_is_terminal(workload):
    index = _build(workload, shards=2, supervisor=_supervisor())
    probes = _knn_probes(workload)[:2]
    index.knn_query_batch(probes)  # spin the pool up
    index.close()
    assert index.closed
    # close() is terminal: a second close and any further operation both
    # raise (the executor — and with it any worker process — is gone).
    with pytest.raises(RuntimeError, match="closed"):
        index.close()
    with pytest.raises(RuntimeError, match="closed"):
        index.knn_query_batch(probes)
    with pytest.raises(RuntimeError, match="closed"):
        len(index)
    with pytest.raises(RuntimeError, match="closed"):
        index.checkpoint()


def test_context_manager_closes_after_mid_fan_out_exception(workload):
    boom = RuntimeError("shard software bug")

    def broken(*args, **kwargs):
        raise boom

    with pytest.raises(RuntimeError, match="software bug"):
        with _build(workload, shards=2, supervisor=_supervisor()) as index:
            index.shards[1].range_query_batch = broken
            index.range_query_batch([workload.query_events[0].query])
    # __exit__ ran: the executor is torn down and the index is terminal.
    assert index.closed
    with pytest.raises(RuntimeError, match="closed"):
        index.close()


def test_exit_tolerates_a_close_inside_the_block(workload):
    # Closing inside the body must not make __exit__ raise.
    with _build(workload, shards=2, supervisor=_supervisor()) as index:
        index.close()
    assert index.closed


def test_non_fault_exceptions_propagate_raw(workload):
    index = _build(workload, shards=2, supervisor=_supervisor())
    try:
        def broken(*args, **kwargs):
            raise KeyError("caller bug, not infrastructure")

        index.shards[0].range_query_batch = broken
        with pytest.raises(KeyError):
            index.range_query_batch([workload.query_events[0].query])
        # A software bug is not a shard failure: the breaker stays closed.
        assert index.breaker_states() == [BREAKER_CLOSED, BREAKER_CLOSED]
    finally:
        index.close()


# ----------------------------------------------------------------------
# Supervised retries, breakers, timeouts
# ----------------------------------------------------------------------
def test_transient_query_fault_is_retried_with_deterministic_backoff(workload):
    sleep = FakeSleep()
    index = _build(workload, shards=NUM_SHARDS, supervisor=_supervisor(sleep=sleep))
    reference = index.range_query_batch([e.query for e in workload.query_events])
    try:
        # The very next read on shard 0 fails once; the retry succeeds.
        injector = fault_wrap(
            index.shards[0].buffer, FaultProfile(fail_reads_at=frozenset({0}))
        )
        index.shards[0].buffer.clear()  # cold cache: the query must read
        answers = index.range_query_batch([e.query for e in workload.query_events])
        assert answers == reference
        assert injector.counters.read_errors == 1
        # Exactly one backoff, equal to the seeded per-shard schedule.
        expected = RetryPolicy().backoff_delay(0, random.Random(0 * 1_000_003 + 0))
        assert sleep.delays == [pytest.approx(expected)]
    finally:
        index.close()


def test_query_retries_exhaust_into_shard_failed_error(workload):
    index = _build(workload, shards=2, supervisor=_supervisor())
    try:
        fault_wrap(index.shards[1].buffer, FaultProfile(read_error_rate=1.0))
        index.shards[1].buffer.clear()  # cold cache: the query must read
        with pytest.raises(ShardFailedError) as excinfo:
            index.range_query_batch([workload.query_events[0].query])
        assert excinfo.value.shard_id == 1
        assert isinstance(excinfo.value.cause, PageReadError)
    finally:
        index.close()


def test_breaker_opens_after_repeated_failures_then_skips(workload):
    config = _supervisor(failure_threshold=2, reset_timeout_s=10_000.0)
    index = _build(workload, shards=NUM_SHARDS, supervisor=config)
    try:
        injector = fault_wrap(index.shards[2].buffer)
        index.shards[2].buffer.clear()  # cold cache: queries must read
        injector.kill()
        queries = [workload.query_events[0].query]
        for _ in range(2):  # two failed calls trip the breaker
            degraded = index.range_query_batch(queries, partial=True)
            assert degraded.failed_shards == [2]
        assert index.breaker_states()[2] == BREAKER_OPEN
        # The third call never touches the dead shard: it is skipped.
        degraded = index.range_query_batch(queries, partial=True)
        skipped = degraded.statuses[2]
        assert skipped.state == SHARD_SKIPPED
        assert skipped.attempts == 0
    finally:
        index.close()


def test_query_timeout_degrades_and_records_breaker_failure(workload):
    config = _supervisor(query_timeout_s=0.05)
    index = _build(workload, shards=2, supervisor=config)
    try:
        real_query = index.shards[0].range_query_batch

        def slow(*args, **kwargs):
            time.sleep(0.25)
            return real_query(*args, **kwargs)

        index.shards[0].range_query_batch = slow
        degraded = index.range_query_batch(
            [workload.query_events[0].query], partial=True
        )
        assert degraded.failed_shards == [0]
        assert "timeout" in degraded.statuses[0].error
    finally:
        index.close()


# ----------------------------------------------------------------------
# Degraded answers
# ----------------------------------------------------------------------
def test_partial_result_complete_iff_no_shard_failed(workload):
    index = _build(workload, shards=NUM_SHARDS, supervisor=_supervisor())
    try:
        queries = [e.query for e in workload.query_events]
        strict = index.range_query_batch(queries)
        healthy = index.range_query_batch(queries, partial=True)
        assert isinstance(healthy, PartialResult)
        assert healthy.complete
        assert healthy.failed_shards == []
        assert healthy == strict  # complete partial answers equal strict mode
        injector = fault_wrap(index.shards[3].buffer)
        index.shards[3].buffer.clear()  # cold cache: queries must read
        injector.kill()
        degraded = index.range_query_batch(queries, partial=True)
        assert not degraded.complete
        assert degraded.failed_shards == [3]
        for partial_ids, full_ids in zip(degraded, strict):
            # The degraded answer is a subset of the true answer, exact
            # for the healthy shards' objects.
            assert set(partial_ids) <= set(full_ids)
            assert [oid for oid in full_ids if shard_of(oid, NUM_SHARDS) != 3] == list(
                partial_ids
            )
    finally:
        index.close()


def test_partial_knn_distances_stay_exact(workload):
    index = _build(workload, shards=NUM_SHARDS, supervisor=_supervisor())
    try:
        probes = _knn_probes(workload)[:4]
        strict = index.knn_query_batch(probes)
        injector = fault_wrap(index.shards[1].buffer)
        index.shards[1].buffer.clear()  # cold cache: queries must read
        injector.kill()
        degraded = index.knn_query_batch(probes, partial=True)
        assert not degraded.complete
        for partial_answer, full_answer in zip(degraded, strict):
            full_distances = dict(full_answer)
            for oid, distance in partial_answer:
                assert shard_of(oid, NUM_SHARDS) != 1  # only healthy shards
                if oid in full_distances:
                    assert distance == full_distances[oid]  # distances exact
    finally:
        index.close()


def test_empty_partial_batches(workload):
    index = _build(workload, shards=2, supervisor=_supervisor())
    try:
        empty = index.range_query_batch([], partial=True)
        assert isinstance(empty, PartialResult)
        assert empty.complete and len(empty) == 0
    finally:
        index.close()


# ----------------------------------------------------------------------
# WAL-based shard recovery: bit-identical answers after a mid-stream kill
# ----------------------------------------------------------------------
def test_shard_kill_recovery_is_bit_identical(workload, batches):
    """Kill 1 of 4 shards mid-stream; recovery must erase every trace."""
    reference = _build(workload, shards=NUM_SHARDS, supervisor=_supervisor())
    faulted = _build(workload, shards=NUM_SHARDS, supervisor=_supervisor())
    try:
        update_batches = [b for b in batches if isinstance(b[0], UpdateEvent)]
        query_batches = [b for b in batches if not isinstance(b[0], UpdateEvent)]
        mid = len(update_batches) // 2
        for batch in update_batches[:mid]:
            pairs = [(e.old, e.new) for e in batch]
            assert faulted.update_batch(pairs) == reference.update_batch(pairs)

        injector = fault_wrap(faulted.shards[2].buffer)
        faulted.shards[2].buffer.clear()  # cold cache: queries must read
        injector.kill()

        # During the outage, degraded queries answer from 3 healthy shards.
        queries = [e.query for batch in query_batches for e in batch][:6]
        strict = reference.range_query_batch(queries)
        degraded = faulted.range_query_batch(queries, partial=True)
        assert not degraded.complete
        assert degraded.failed_shards == [2]
        for partial_ids, full_ids in zip(degraded, strict):
            assert set(partial_ids) <= set(full_ids)

        # The second half of the stream flows into both; the first
        # mutation routed to the dead shard triggers WAL-replay recovery.
        for batch in update_batches[mid:]:
            pairs = [(e.old, e.new) for e in batch]
            assert faulted.update_batch(pairs) == reference.update_batch(pairs)
        assert faulted.recovery_events, "no mutation reached the killed shard"
        event = faulted.recovery_events[0]
        assert event["shard_id"] == 2
        assert event["replayed_records"] > 0
        # Compaction: the successful recovery checkpointed the rebuilt
        # shard and truncated its WAL, so the log now holds only the
        # mutations routed to shard 2 *after* the recovery — strictly
        # fewer than the full-history replay the recovery itself did.
        assert event["compacted"]
        assert len(faulted.shard_log(2)) < event["replayed_records"]

        # Bit-identical from here on: every answer equals the
        # never-failed index's answer.
        assert len(faulted) == len(reference)
        assert faulted.range_query_batch(queries) == reference.range_query_batch(
            queries
        )
        probes = _knn_probes(workload)
        assert faulted.knn_query_batch(probes) == reference.knn_query_batch(probes)
        assert faulted.breaker_states()[2] == BREAKER_CLOSED
        # The aggregate counters read through the recovered (fresh) shard.
        aggregate = faulted.buffer.stats
        per_shard = faulted.shard_stats()
        assert aggregate.physical.reads == sum(s.physical.reads for s in per_shard)
    finally:
        reference.close()
        faulted.close()


def test_write_fault_on_mutation_triggers_recovery_not_blind_retry(
    workload, batches
):
    reference = _build(workload, shards=NUM_SHARDS, supervisor=_supervisor())
    faulted = _build(workload, shards=NUM_SHARDS, supervisor=_supervisor())
    try:
        # Every write on shard 1 fails: the first update batch that
        # evicts a dirty page there must recover, never blind-retry.
        fault_wrap(faulted.shards[1].buffer, FaultProfile(write_error_rate=1.0))
        update_batches = [b for b in batches if isinstance(b[0], UpdateEvent)]
        for batch in update_batches:
            pairs = [(e.old, e.new) for e in batch]
            assert faulted.update_batch(pairs) == reference.update_batch(pairs)
            if faulted.recovery_events:
                break
        assert faulted.recovery_events, "no write fault fired on shard 1"
        assert faulted.recovery_events[0]["shard_id"] == 1
        queries = [e.query for e in workload.query_events]
        assert faulted.range_query_batch(queries) == reference.range_query_batch(
            queries
        )
    finally:
        reference.close()
        faulted.close()


def test_recover_shard_is_explicitly_callable(workload):
    index = _build(workload, shards=2, supervisor=_supervisor())
    try:
        before = index.range_query_batch([e.query for e in workload.query_events])
        index.recover_shard(0)
        assert index.recovery_events[0]["shard_id"] == 0
        after = index.range_query_batch([e.query for e in workload.query_events])
        assert after == before  # a recovery of a healthy shard is invisible
    finally:
        index.close()


def test_recovery_without_factory_fails_strictly(workload):
    shards = [
        build_standard_indexes(workload, PARAMS, which=("Bx",))["Bx"] for _ in range(2)
    ]
    index = ShardedIndex(
        shards, ServeConfig(space=PARAMS.space, supervisor=_supervisor())
    )
    try:
        index.bulk_load(workload.initial_objects)
        injector = fault_wrap(index.shards[0].buffer)
        index.shards[0].buffer.clear()  # cold cache: the update must read
        injector.kill()
        pairs = [
            (e.old, e.new)
            for e in workload.update_events
            if index.shard_of(e.old.oid) == 0
        ][:1]
        assert pairs, "workload routes no update to shard 0"
        with pytest.raises(ShardFailedError):
            index.update_batch(pairs)
        with pytest.raises(ShardFailedError):
            index.recover_shard(0)
    finally:
        index.close()


# ----------------------------------------------------------------------
# Seeded end-to-end chaos run (CI publishes three CHAOS_SEED values)
# ----------------------------------------------------------------------
def test_seeded_chaos_run_converges_to_reference_answers(workload, batches):
    """Scheduled faults on every shard; final answers must match exactly.

    The schedule is a pure function of ``CHAOS_SEED``: a handful of read
    and write ordinals per shard fail (each once), so bounded retries
    always converge for queries and WAL recovery heals every mutation
    fault.  The run must end with answers bit-identical to a fault-free
    reference, whatever the seed.
    """
    chaos_rng = random.Random(CHAOS_SEED)
    retry = RetryPolicy(max_attempts=6, base_delay_s=0.001, max_delay_s=0.01)
    reference = _build(workload, shards=NUM_SHARDS, supervisor=_supervisor())
    faulted = _build(
        workload, shards=NUM_SHARDS, supervisor=_supervisor(retry=retry)
    )
    injectors = []
    try:
        for shard in faulted.shards:
            profile = FaultProfile(
                seed=chaos_rng.randrange(2**31),
                fail_reads_at=frozenset(chaos_rng.sample(range(300), 4)),
                fail_writes_at=frozenset(chaos_rng.sample(range(300), 4)),
            )
            injectors.append(fault_wrap(shard.buffer, profile))
        queries_seen = 0
        for batch in batches:
            if isinstance(batch[0], UpdateEvent):
                pairs = [(e.old, e.new) for e in batch]
                assert faulted.update_batch(pairs) == reference.update_batch(pairs)
            else:
                queries = [e.query for e in batch]
                assert faulted.range_query_batch(queries) == (
                    reference.range_query_batch(queries)
                )
                queries_seen += len(queries)
        assert queries_seen > 0
        probes = _knn_probes(workload)
        assert faulted.knn_query_batch(probes) == reference.knn_query_batch(probes)
        assert len(faulted) == len(reference)
    finally:
        reference.close()
        faulted.close()
