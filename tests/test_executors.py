"""Executor equivalence and lifecycle tests (the pluggable-backend claim).

The serving layer promises that *where* shard calls run — inline
(``SerialExecutor``), on a thread pool (``ThreadExecutor``) or in worker
processes (``ProcessExecutor``) — never changes *what* they answer: every
executor must return bit-identical range/kNN/update results for every
index family, worker-process death must recover through the same WAL
machinery as any shard fault, and a closed index must tear its workers
down exactly once.  See ``docs/serving.md``.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.bench.harness import build_standard_indexes
from repro.bxtree.bx_tree import BxTree
from repro.objects.knn import KNNQuery
from repro.serve import (
    ProcessExecutor,
    SerialExecutor,
    ServeConfig,
    ShardedIndex,
    SupervisorConfig,
    ThreadExecutor,
    make_executor,
    shard_of,
)
from repro.storage import BufferManager
from repro.storage.faults import FaultProfile, fault_wrap
from repro.workload.events import UpdateEvent
from repro.workload.generator import build_workload
from repro.workload.parameters import WorkloadParameters

PARAMS = WorkloadParameters(num_objects=400, time_duration=40.0, num_queries=12)

WINDOW = 1.0

INDEX_NAMES = ("Bx", "Bx(VP)", "TPR*", "TPR*(VP)")

EXECUTOR_NAMES = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def workload():
    return build_workload("SA", PARAMS)


@pytest.fixture(scope="module")
def batches(workload):
    return workload.grouped_events(window=WINDOW)


def _build(workload, name, shards=1, executor=None):
    index = build_standard_indexes(
        workload, PARAMS, which=(name,), shards=shards, executor=executor
    )[name]
    index.bulk_load(workload.initial_objects)
    return index


def _replay(index, batches):
    """Replay the grouped event stream; returns (update counts, answers)."""
    counts, answers = [], []
    for batch in batches:
        if isinstance(batch[0], UpdateEvent):
            counts.append(index.update_batch([(e.old, e.new) for e in batch]))
        else:
            answers.extend(index.range_query_batch([e.query for e in batch]))
    return counts, answers


def _knn_probes(workload, ks=(1, 5, 10)):
    events = workload.sorted_events()
    issue_time = events[-1].time if events else 0.0
    return [
        KNNQuery(
            center=event.query.range.center,
            k=ks[i % len(ks)],
            query_time=issue_time + event.query.predictive_time,
            issue_time=issue_time,
        )
        for i, event in enumerate(workload.query_events)
    ]


def _stats_triple(index):
    stats = index.buffer.stats
    return (
        (stats.physical.reads, stats.physical.writes),
        (stats.logical.reads, stats.logical.writes),
        (stats.buffer.hits, stats.buffer.misses),
    )


# ----------------------------------------------------------------------
# Answer equivalence across executors (all four families)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", INDEX_NAMES)
def test_executors_answer_bit_identical(workload, batches, name):
    """Serial/thread/process answers are bit-identical, family by family.

    Update return counts, range answers (canonical ascending-id order)
    and kNN answers (ids, distances *and* tie order) must all agree with
    the unsharded index — and the executors' aggregate I/O counters must
    agree with each other, which pins the process mode's parent-side
    stats mirror to exact (not sampled) accounting.
    """
    unsharded = _build(workload, name)
    ref_counts, ref_answers = _replay(unsharded, batches)
    ref_answers = [sorted(result) for result in ref_answers]
    probes = _knn_probes(workload)
    ref_knn = unsharded.knn_query_batch(probes, space=PARAMS.space)

    per_executor = {}
    for executor in EXECUTOR_NAMES:
        index = _build(workload, name, shards=2, executor=executor)
        try:
            counts, answers = _replay(index, batches)
            assert counts == ref_counts, (name, executor)
            assert answers == ref_answers, (name, executor)
            knn = index.knn_query_batch(probes, space=PARAMS.space)
            assert knn == ref_knn, (name, executor)
            per_executor[executor] = _stats_triple(index)
        finally:
            index.close()
    assert per_executor["process"] == per_executor["serial"], name
    assert per_executor["thread"] == per_executor["serial"], name


def test_process_shard_count_invariance(workload, batches):
    """Process-mode answers do not depend on the shard count."""
    unsharded = _build(workload, "Bx")
    _, ref_answers = _replay(unsharded, batches)
    ref_answers = [sorted(result) for result in ref_answers]
    probes = _knn_probes(workload)
    ref_knn = unsharded.knn_query_batch(probes, space=PARAMS.space)
    for shards in (2, 4):
        index = _build(workload, "Bx", shards=shards, executor="process")
        try:
            _, answers = _replay(index, batches)
            assert answers == ref_answers, shards
            assert index.knn_query_batch(probes, space=PARAMS.space) == ref_knn, shards
        finally:
            index.close()


# ----------------------------------------------------------------------
# Worker-process death: ShardDownError -> WAL replay -> respawned worker
# ----------------------------------------------------------------------
def test_worker_sigkill_recovers_bit_identical_to_never_failed_twin(workload):
    twin = _build(workload, "Bx", shards=2, executor="serial")
    index = _build(workload, "Bx", shards=2, executor="process")
    try:
        updates = [(e.old, e.new) for e in workload.update_events]
        half = len(updates) // 2
        twin.update_batch(updates[:half])
        index.update_batch(updates[:half])

        victim = 1
        os.kill(index.executor.worker_pid(victim), signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while index.executor.worker_alive(victim) and time.monotonic() < deadline:
            time.sleep(0.01)

        # The next mutation touching the dead worker sees ShardDownError,
        # which is not retried blindly: the serving layer rebuilds the
        # shard from its factory, replays the WAL and ships the result to
        # a fresh worker process.
        assert twin.update_batch(updates[half:]) == index.update_batch(updates[half:])
        events = [e for e in index.recovery_events if e["shard_id"] == victim]
        assert events and events[-1]["replayed_records"] > 0
        assert index.executor.worker_alive(victim)

        queries = [e.query for e in workload.query_events]
        probes = _knn_probes(workload)
        assert index.range_query_batch(queries) == twin.range_query_batch(queries)
        assert index.knn_query_batch(probes, space=PARAMS.space) == twin.knn_query_batch(
            probes, space=PARAMS.space
        )
        assert index.breaker_states() == ["closed", "closed"]
    finally:
        twin.close()
        index.close()


# ----------------------------------------------------------------------
# Timeout parity: a stalled worker degrades exactly like a stalled thread
# ----------------------------------------------------------------------
def _slow_disk_index(workload, executor, read_latency_s):
    """A 2-shard index whose shard 0 pays ``read_latency_s`` per page read.

    The shards are loaded *before* the injector arms (loading through the
    slow disk would dominate the test) and the injector is slid under
    shard 0 before the executor attaches, so in process mode it ships to
    the worker with the shard (``time.sleep`` pickles; the latency fires
    inside the worker).  Tiny buffers keep every query reading cold pages.
    """
    shards = [
        BxTree(
            buffer=BufferManager(capacity=2),
            space=PARAMS.space,
            max_update_interval=PARAMS.max_update_interval,
        )
        for _ in range(2)
    ]
    parts = ([], [])
    for obj in workload.initial_objects:
        parts[shard_of(obj.oid, 2)].append(obj)
    for shard, part in zip(shards, parts):
        shard.bulk_load(part)
    fault_wrap(shards[0].buffer, profile=FaultProfile(read_latency_s=read_latency_s))
    return ShardedIndex(
        shards,
        ServeConfig(
            name="Bx-slow",
            space=PARAMS.space,
            executor=executor,
            supervisor=SupervisorConfig(query_timeout_s=0.05),
        ),
    )


@pytest.mark.slow
def test_partial_result_parity_when_a_worker_times_out(workload):
    queries = [e.query for e in workload.query_events[:2]]
    results = {}
    for executor in ("thread", "process"):
        index = _slow_disk_index(workload, executor, read_latency_s=0.2)
        try:
            degraded = index.range_query_batch(queries, partial=True)
            assert degraded.failed_shards == [0], executor
            assert "timeout" in degraded.statuses[0].error, executor
            results[executor] = list(degraded)
        finally:
            index.close()
    # The surviving (healthy-shard) answers are identical across backends.
    assert results["thread"] == results["process"]


# ----------------------------------------------------------------------
# Lifecycle: single-use executors, terminal close, no leaked workers
# ----------------------------------------------------------------------
def test_process_close_terminates_every_worker(workload):
    index = _build(workload, "Bx", shards=2, executor="process")
    backend = index.executor
    pids = [backend.worker_pid(shard_id) for shard_id in range(2)]
    index.close()
    for shard_id, pid in enumerate(pids):
        assert not backend.worker_alive(shard_id)
        with pytest.raises(OSError):
            os.kill(pid, 0)  # the pid is gone, not just disconnected


def test_executor_instances_are_single_use(workload):
    executor = ProcessExecutor(max_workers=2)
    index = _build(workload, "Bx", shards=2, executor=executor)
    try:
        shard = build_standard_indexes(workload, PARAMS, which=("Bx",))["Bx"]
        with pytest.raises(RuntimeError, match="already attached"):
            ShardedIndex([shard], ServeConfig(executor=executor))
    finally:
        index.close()


def test_make_executor_specs():
    assert isinstance(make_executor(None), ThreadExecutor)
    assert isinstance(make_executor("serial"), SerialExecutor)
    assert isinstance(make_executor("thread"), ThreadExecutor)
    assert isinstance(make_executor("process"), ProcessExecutor)
    assert isinstance(make_executor(SerialExecutor), SerialExecutor)
    with pytest.raises(ValueError, match="unknown executor"):
        make_executor("fibers")
    with pytest.raises(TypeError):
        make_executor(42)


# ----------------------------------------------------------------------
# ServeConfig surface: legacy kwargs deprecate, build() wires everything
# ----------------------------------------------------------------------
@pytest.mark.filterwarnings("default::DeprecationWarning")
def test_legacy_constructor_kwargs_still_work_but_warn(workload):
    shard = build_standard_indexes(workload, PARAMS, which=("Bx",))["Bx"]
    with pytest.warns(DeprecationWarning, match="ServeConfig"):
        index = ShardedIndex([shard], name="legacy", space=PARAMS.space)
    try:
        assert index.name == "legacy"
        assert index.config.space == PARAMS.space
    finally:
        index.close()


def test_config_and_wrong_positional_type_are_rejected(workload):
    shard = build_standard_indexes(workload, PARAMS, which=("Bx",))["Bx"]
    with pytest.raises(TypeError, match="ServeConfig"):
        ShardedIndex([shard], "a-name")


def test_build_classmethod_serves_end_to_end(workload):
    index = ShardedIndex.build(
        family="Bx",
        shards=2,
        executor="process",
        space=PARAMS.space,
        buffer_pages=16,
        max_update_interval=PARAMS.max_update_interval,
    )
    try:
        assert index.num_shards == 2
        assert index.executor.kind == "process"
        index.bulk_load(workload.initial_objects)
        assert len(index) == len(workload.initial_objects)
        # The factory is armed: recovery works out of the box.
        os.kill(index.executor.worker_pid(0), signal.SIGKILL)
        updates = [(e.old, e.new) for e in workload.update_events[:50]]
        index.update_batch(updates)
        assert len(index) == len(workload.initial_objects)
    finally:
        index.close()


def test_build_rejects_unknown_family_and_durable_process():
    with pytest.raises(ValueError, match="unknown index family"):
        ShardedIndex.build(family="quad", shards=2)


def test_durable_stores_reject_the_process_executor(tmp_path, workload):
    from repro.serve import DurableStore

    store = DurableStore(str(tmp_path / "store"))
    with pytest.raises(ValueError, match="in-process executor"):
        store.create(
            lambda buffer: BxTree(buffer=buffer, space=PARAMS.space),
            num_shards=2,
            config=ServeConfig(executor="process"),
        )
