"""Tests for the road-network graph and the synthetic network generators."""

import math
import random

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.network.generators import (
    NETWORK_BUILDERS,
    chicago_like,
    grid_network,
    network_for,
    new_york_like,
)
from repro.network.road_network import RoadNetwork


def tiny_network() -> RoadNetwork:
    """A 2x2 grid with unit spacing."""
    network = RoadNetwork("tiny")
    positions = {0: Point(0, 0), 1: Point(1, 0), 2: Point(0, 1), 3: Point(1, 1)}
    for node_id, position in positions.items():
        network.add_node(node_id, position)
    network.add_edge(0, 1)
    network.add_edge(0, 2)
    network.add_edge(1, 3)
    network.add_edge(2, 3)
    return network


class TestRoadNetwork:
    def test_counts(self):
        network = tiny_network()
        assert network.num_nodes == 4
        assert network.num_edges == 4

    def test_duplicate_node_rejected(self):
        network = tiny_network()
        with pytest.raises(ValueError):
            network.add_node(0, Point(5, 5))

    def test_edge_requires_existing_endpoints(self):
        network = tiny_network()
        with pytest.raises(KeyError):
            network.add_edge(0, 99)
        with pytest.raises(ValueError):
            network.add_edge(1, 1)

    def test_edge_length_is_euclidean(self):
        network = tiny_network()
        edge = network.edges_of(0)[0]
        assert edge.length == pytest.approx(1.0)

    def test_neighbors(self):
        network = tiny_network()
        assert sorted(network.neighbors(0)) == [1, 2]

    def test_edge_direction_is_unit(self):
        network = tiny_network()
        direction = network.edge_direction(0, 3)
        assert direction.magnitude == pytest.approx(1.0)

    def test_point_along(self):
        network = tiny_network()
        midpoint = network.point_along(0, 1, 0.5)
        assert midpoint == Point(0.5, 0.0)
        with pytest.raises(ValueError):
            network.point_along(0, 1, 1.5)

    def test_shortest_path(self):
        network = tiny_network()
        path = network.shortest_path(0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) == 3
        assert network.shortest_path(2, 2) == [2]

    def test_shortest_path_disconnected(self):
        network = tiny_network()
        network.add_node(42, Point(9, 9))
        assert network.shortest_path(0, 42) is None

    def test_random_walk_avoids_u_turn(self):
        network = tiny_network()
        rng = random.Random(0)
        for _ in range(20):
            next_node = network.next_node_random_walk(1, came_from=0, rng=rng)
            assert next_node == 3  # the only non-U-turn option

    def test_edge_other_endpoint(self):
        network = tiny_network()
        edge = network.edges_of(0)[0]
        assert edge.other(edge.source) == edge.target
        with pytest.raises(ValueError):
            edge.other(99)


class TestGenerators:
    def test_grid_network_dimensions(self):
        network = grid_network("test", rows=5, cols=4, irregular_fraction=0.0)
        assert network.num_nodes == 20
        # 4 rows x 3 horizontal edges + 5 cols ... : (rows*(cols-1) + cols*(rows-1))
        assert network.num_edges == 5 * 3 + 4 * 4

    def test_grid_requires_at_least_2x2(self):
        with pytest.raises(ValueError):
            grid_network("bad", rows=1, cols=5)

    def test_irregular_fraction_adds_edges(self):
        base = grid_network("a", rows=6, cols=6, irregular_fraction=0.0)
        noisy = grid_network("b", rows=6, cols=6, irregular_fraction=0.3, seed=1)
        assert noisy.num_edges > base.num_edges

    def test_nodes_stay_inside_space(self):
        space = Rect(0.0, 0.0, 10_000.0, 10_000.0)
        network = grid_network("rot", rows=8, cols=8, space=space, rotation_degrees=30.0)
        for node_id in network.node_ids:
            assert space.contains_point(network.position(node_id))

    def test_rotation_changes_edge_directions(self):
        straight = grid_network("s", rows=5, cols=5, rotation_degrees=0.0, jitter=0.0)
        rotated = grid_network("r", rows=5, cols=5, rotation_degrees=30.0, jitter=0.0)

        def dominant_angle(network):
            angles = [math.degrees(d.angle) % 180.0 for d in network.iter_edge_directions()]
            return min(angles)

        assert dominant_angle(straight) == pytest.approx(0.0, abs=1.0)
        assert dominant_angle(rotated) == pytest.approx(30.0, abs=2.0)

    def test_named_networks_have_documented_ordering(self):
        """NY must be the densest network (most nodes, shortest edges) and CH
        the sparsest, per Section 6 of the paper."""
        ch = chicago_like()
        ny = new_york_like()
        assert ny.num_nodes > ch.num_nodes
        assert ny.average_edge_length() < ch.average_edge_length()

    def test_network_for_lookup(self):
        for name in NETWORK_BUILDERS:
            network = network_for(name)
            assert network.name == name
            assert network.num_nodes > 0
        assert network_for("ch").name == "CH"
        with pytest.raises(ValueError):
            network_for("atlantis")

    def test_skew_ordering_of_networks(self):
        """CH's edge directions concentrate around its own two dominant axes
        more tightly than NY's (the paper: CH most skewed, NY least)."""

        def off_axis_fraction(network):
            angles = [math.degrees(d.angle) % 90.0 for d in network.iter_edge_directions()]
            # The grid orientation is the most common (rounded) folded angle:
            # perpendicular street families fold onto the same value mod 90.
            from collections import Counter

            dominant = Counter(round(a) % 90 for a in angles).most_common(1)[0][0]

            def distance(angle):
                diff = abs(angle - dominant) % 90.0
                return min(diff, 90.0 - diff)

            return sum(1 for a in angles if distance(a) > 10.0) / len(angles)

        assert off_axis_fraction(chicago_like()) < off_axis_fraction(new_york_like())
