"""The flat float kernels must agree exactly with the object API.

Every kernel in :mod:`repro.geometry.kernels` re-implements a hot-path
computation that also exists (or used to exist) as allocating object-API
code; these tests pin the two against each other on randomized inputs so
the index refactors cannot silently drift.
"""

from __future__ import annotations

import random

import pytest

from repro.geometry import kernels
from repro.geometry.moving_rect import MovingRect
from repro.geometry.rect import Rect
from repro.geometry.sweep import sweeping_volume_closed_form


def random_moving_rect(rng: random.Random, degenerate: bool = False) -> MovingRect:
    x0 = rng.uniform(-100.0, 100.0)
    y0 = rng.uniform(-100.0, 100.0)
    w = 0.0 if degenerate else rng.uniform(0.0, 50.0)
    h = 0.0 if degenerate else rng.uniform(0.0, 50.0)
    vx = rng.uniform(-10.0, 10.0)
    vy = rng.uniform(-10.0, 10.0)
    return MovingRect(
        rect=Rect(x0, y0, x0 + w, y0 + h),
        v_x_min=vx if degenerate else vx - rng.uniform(0.0, 5.0),
        v_y_min=vy if degenerate else vy - rng.uniform(0.0, 5.0),
        v_x_max=vx,
        v_y_max=vy,
        reference_time=rng.uniform(0.0, 5.0),
    )


def as_extent(bound: MovingRect, time: float) -> kernels.Extent:
    projected = bound.projected_to(time)
    return (
        projected.rect.x_min,
        projected.rect.y_min,
        projected.rect.x_max,
        projected.rect.y_max,
        projected.v_x_min,
        projected.v_y_min,
        projected.v_x_max,
        projected.v_y_max,
    )


class TestProjectionKernels:
    def test_project_matches_rect_at(self):
        rng = random.Random(1)
        for _ in range(200):
            bound = random_moving_rect(rng)
            time = rng.uniform(-5.0, 20.0)
            rect = bound.rect_at(time)
            assert kernels.project(bound, time) == (
                rect.x_min,
                rect.y_min,
                rect.x_max,
                rect.y_max,
            )

    def test_extent_of_matches_projected_to(self):
        rng = random.Random(2)
        for _ in range(200):
            bound = random_moving_rect(rng)
            time = bound.reference_time + rng.uniform(0.0, 10.0)
            assert kernels.extent_of(bound, time) == as_extent(bound, time)

    def test_batch_helpers_match_scalar(self):
        rng = random.Random(3)
        bounds = [random_moving_rect(rng) for _ in range(20)]
        time = 7.0
        assert kernels.batch_project(bounds, time) == [
            kernels.project(b, time) for b in bounds
        ]
        assert kernels.batch_extents(bounds, time) == [
            kernels.extent_of(b, time) for b in bounds
        ]
        for (cx, cy), b in zip(kernels.batch_centers(bounds, time), bounds):
            center = b.rect_at(time).center
            assert cx == pytest.approx(center.x)
            assert cy == pytest.approx(center.y)


class TestBoundKernels:
    def test_bound_extent_matches_moving_rect_bounding(self):
        rng = random.Random(4)
        for _ in range(50):
            bounds = [random_moving_rect(rng) for _ in range(rng.randint(1, 12))]
            time = rng.uniform(0.0, 15.0)
            bound = MovingRect.bounding(bounds, time)
            assert kernels.bound_extent(bounds, time) == pytest.approx(
                as_extent(bound, time)
            )

    def test_bound_extent_empty_raises(self):
        with pytest.raises(ValueError):
            kernels.bound_extent([], 0.0)

    def test_bounding_returns_anchored_single_child_unchanged(self):
        rng = random.Random(5)
        bound = random_moving_rect(rng)
        anchored = bound.projected_to(9.0)
        assert MovingRect.bounding([anchored], 9.0) is anchored

    def test_remove_one_matches_naive_rebounding(self):
        rng = random.Random(6)
        for _ in range(30):
            bounds = [random_moving_rect(rng) for _ in range(rng.randint(2, 10))]
            time = 3.0
            extents = kernels.batch_extents(bounds, time)
            leave_one_out = kernels.remove_one_extents(extents)
            for index in range(len(bounds)):
                rest = bounds[:index] + bounds[index + 1 :]
                assert leave_one_out[index] == pytest.approx(
                    kernels.bound_extent(rest, time)
                )

    def test_cumulative_extents_are_prefix_unions(self):
        rng = random.Random(7)
        bounds = [random_moving_rect(rng) for _ in range(8)]
        extents = kernels.batch_extents(bounds, 1.0)
        prefix = kernels.cumulative_extents(extents)
        for index in range(len(bounds)):
            assert prefix[index] == pytest.approx(
                kernels.bound_extent(bounds[: index + 1], 1.0)
            )

    def test_intersection_area_now_and_projected(self):
        a = (0.0, 0.0, 10.0, 10.0, 1.0, 0.0, 1.0, 0.0)
        b = (8.0, 2.0, 20.0, 8.0, -1.0, 0.0, -1.0, 0.0)
        assert kernels.intersection_area(a, b) == pytest.approx(2.0 * 6.0)
        # After 1 time unit a spans [1, 11], b spans [7, 19]: overlap 4 x 6.
        assert kernels.intersection_area(a, b, 1.0) == pytest.approx(4.0 * 6.0)
        disjoint = (100.0, 100.0, 110.0, 110.0, 0.0, 0.0, 0.0, 0.0)
        assert kernels.intersection_area(a, disjoint) == 0.0


class TestSweepKernels:
    def test_sweep_volume_is_the_closed_form(self):
        rng = random.Random(8)
        for _ in range(100):
            args = (
                rng.uniform(0.0, 50.0),
                rng.uniform(0.0, 50.0),
                rng.uniform(-10.0, 10.0),
                rng.uniform(-10.0, 10.0),
                rng.uniform(-10.0, 10.0),
                rng.uniform(-10.0, 10.0),
                rng.uniform(0.0, 30.0),
            )
            assert kernels.sweep_volume(*args) == sweeping_volume_closed_form(*args)

    def test_extent_sweep_volume_matches_enlarged_rect(self):
        rng = random.Random(9)
        for _ in range(50):
            bound = random_moving_rect(rng)
            ext = kernels.extent_of(bound, 4.0)
            grow = rng.uniform(0.0, 100.0)
            expected = kernels.sweep_volume(
                (ext[2] - ext[0]) + grow,
                (ext[3] - ext[1]) + grow,
                ext[4],
                ext[5],
                ext[6],
                ext[7],
                25.0,
            )
            assert kernels.extent_sweep_volume(ext, grow, 25.0) == expected


class TestIntersectionKernel:
    def _kernel_args(self, a: MovingRect, b: MovingRect, start: float, end: float):
        return (
            a.rect.x_min,
            a.rect.y_min,
            a.rect.x_max,
            a.rect.y_max,
            a.v_x_min,
            a.v_y_min,
            a.v_x_max,
            a.v_y_max,
            a.reference_time,
            b.rect.x_min,
            b.rect.y_min,
            b.rect.x_max,
            b.rect.y_max,
            b.v_x_min,
            b.v_y_min,
            b.v_x_max,
            b.v_y_max,
            b.reference_time,
            start,
            end,
        )

    def test_matches_intersects_during_on_random_pairs(self):
        rng = random.Random(10)
        for _ in range(500):
            a = random_moving_rect(rng, degenerate=rng.random() < 0.5)
            b = random_moving_rect(rng)
            start = max(a.reference_time, b.reference_time) + rng.uniform(0.0, 5.0)
            end = start + rng.uniform(0.0, 10.0)
            assert kernels.intersects_interval(
                *self._kernel_args(a, b, start, end)
            ) == a.intersects_during(b, start, end)

    def test_reference_time_inside_window_falls_back(self):
        # b's reference time lies inside the query window, exercising the
        # piecewise (object API) fallback path.
        a = MovingRect(Rect(0.0, 0.0, 1.0, 1.0), 0.0, 0.0, 0.0, 0.0, 0.0)
        b = MovingRect(Rect(5.0, 0.0, 6.0, 1.0), -1.0, 0.0, -1.0, 0.0, 2.0)
        args = self._kernel_args(a, b, 0.0, 10.0)
        assert kernels.intersects_interval(*args) == a.intersects_during(b, 0.0, 10.0)
        assert kernels.intersects_interval(*args)

    def test_invalid_interval_raises(self):
        a = random_moving_rect(random.Random(11))
        with pytest.raises(ValueError):
            kernels.intersects_interval(*self._kernel_args(a, a, 9.0, 8.0))


class TestSegmentKernels:
    def test_circle_predicate_matches_dense_sampling(self):
        rng = random.Random(12)
        for _ in range(300):
            px, py = rng.uniform(-20, 20), rng.uniform(-20, 20)
            vx, vy = rng.uniform(-5, 5), rng.uniform(-5, 5)
            duration = rng.uniform(0.0, 10.0)
            cx, cy, radius = rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(0.1, 10)
            sampled = any(
                (px + vx * t - cx) ** 2 + (py + vy * t - cy) ** 2 <= radius * radius
                for t in [duration * i / 200.0 for i in range(201)]
            )
            reported = kernels.segment_intersects_circle(
                px, py, vx, vy, duration, cx, cy, radius
            )
            if sampled:
                assert reported
            # The exact predicate may be True when sampling narrowly misses a
            # grazing contact, so only the inclusion above is asserted.

    def test_rect_predicate_matches_dense_sampling(self):
        rng = random.Random(13)
        for _ in range(300):
            px, py = rng.uniform(-20, 20), rng.uniform(-20, 20)
            vx, vy = rng.uniform(-5, 5), rng.uniform(-5, 5)
            duration = rng.uniform(0.0, 10.0)
            x0, y0 = rng.uniform(-20, 10), rng.uniform(-20, 10)
            x1, y1 = x0 + rng.uniform(0.0, 15.0), y0 + rng.uniform(0.0, 15.0)
            sampled = any(
                x0 <= px + vx * t <= x1 and y0 <= py + vy * t <= y1
                for t in [duration * i / 200.0 for i in range(201)]
            )
            reported = kernels.segment_intersects_rect(
                px, py, vx, vy, duration, x0, y0, x1, y1
            )
            if sampled:
                assert reported


class TestSoaIntersectMany:
    """The vectorized (queries x entries) intersect pass versus the scalar kernel."""

    @staticmethod
    def _columns(entries):
        from array import array

        columns = [array("d") for _ in range(9)]
        for bound in entries:
            values = (
                bound.rect.x_min,
                bound.rect.y_min,
                bound.rect.x_max,
                bound.rect.y_max,
                bound.v_x_min,
                bound.v_y_min,
                bound.v_x_max,
                bound.v_y_max,
                bound.reference_time,
            )
            for column, value in zip(columns, values):
                column.append(value)
        return columns

    @staticmethod
    def _info(bound, start, end):
        return (
            bound.rect.x_min,
            bound.rect.y_min,
            bound.rect.x_max,
            bound.rect.y_max,
            bound.v_x_min,
            bound.v_y_min,
            bound.v_x_max,
            bound.v_y_max,
            bound.reference_time,
            start,
            end,
        )

    def test_matrix_matches_scalar_kernel(self):
        rng = random.Random(77)
        for _ in range(40):
            entries = [random_moving_rect(rng) for _ in range(rng.randint(1, 20))]
            queries = []
            for _ in range(rng.randint(1, 8)):
                bound = random_moving_rect(rng)
                start = bound.reference_time + rng.uniform(0.0, 3.0)
                queries.append((bound, start, start + rng.uniform(0.0, 5.0)))
            columns = self._columns(entries)
            infos = [self._info(bound, start, end) for bound, start, end in queries]
            matrix = kernels.soa_intersect_many(*columns, infos)
            assert matrix.shape == (len(queries), len(entries))
            for qi, info in enumerate(infos):
                for ei, entry in enumerate(entries):
                    scalar = kernels.intersects_interval(
                        entry.rect.x_min,
                        entry.rect.y_min,
                        entry.rect.x_max,
                        entry.rect.y_max,
                        entry.v_x_min,
                        entry.v_y_min,
                        entry.v_x_max,
                        entry.v_y_max,
                        entry.reference_time,
                        *info,
                    )
                    assert bool(matrix[qi, ei]) == scalar, (qi, ei)

    def test_piecewise_pairs_take_the_scalar_fallback(self):
        """Entries/queries whose reference time falls inside the window."""
        rng = random.Random(78)
        for _ in range(40):
            entries = []
            for _ in range(6):
                bound = random_moving_rect(rng)
                # Half the entries anchor after the window start.
                if rng.random() < 0.5:
                    bound = MovingRect(
                        rect=bound.rect,
                        v_x_min=bound.v_x_min,
                        v_y_min=bound.v_y_min,
                        v_x_max=bound.v_x_max,
                        v_y_max=bound.v_y_max,
                        reference_time=bound.reference_time + 10.0,
                    )
                entries.append(bound)
            query = random_moving_rect(rng)
            start = query.reference_time + rng.uniform(0.0, 2.0)
            info = self._info(query, start, start + 20.0)
            columns = self._columns(entries)
            matrix = kernels.soa_intersect_many(*columns, [info])
            for ei, entry in enumerate(entries):
                scalar = kernels.intersects_interval(
                    entry.rect.x_min,
                    entry.rect.y_min,
                    entry.rect.x_max,
                    entry.rect.y_max,
                    entry.v_x_min,
                    entry.v_y_min,
                    entry.v_x_max,
                    entry.v_y_max,
                    entry.reference_time,
                    *info,
                )
                assert bool(matrix[0, ei]) == scalar, ei

    def test_rejects_inverted_window(self):
        rng = random.Random(79)
        entry = random_moving_rect(rng)
        query = random_moving_rect(rng)
        info = self._info(query, query.reference_time + 5.0, query.reference_time + 1.0)
        with pytest.raises(ValueError):
            kernels.soa_intersect_many(*self._columns([entry]), [info])
