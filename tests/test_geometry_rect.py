"""Unit tests for the Rect type."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect

coord = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


class TestConstruction:
    def test_invalid_rect_raises(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_from_point_is_degenerate(self):
        r = Rect.from_point(Point(2.0, 3.0))
        assert r.area == 0.0
        assert r.contains_point(Point(2.0, 3.0))

    def test_from_center(self):
        r = Rect.from_center(Point(5.0, 5.0), 2.0, 3.0)
        assert r.as_tuple() == (3.0, 2.0, 7.0, 8.0)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([])
        with pytest.raises(ValueError):
            Rect.bounding_points([])

    def test_bounding_points(self):
        r = Rect.bounding_points([Point(0, 0), Point(2, 5), Point(-1, 3)])
        assert r.as_tuple() == (-1, 0, 2, 5)


class TestProperties:
    def test_width_height_area_perimeter(self):
        r = Rect(0.0, 0.0, 4.0, 3.0)
        assert r.width == 4.0
        assert r.height == 3.0
        assert r.area == 12.0
        assert r.perimeter == 14.0

    def test_center(self):
        assert Rect(0.0, 0.0, 4.0, 2.0).center == Point(2.0, 1.0)

    def test_corners(self):
        corners = list(Rect(0.0, 0.0, 1.0, 2.0).corners())
        assert len(corners) == 4
        assert Point(0.0, 2.0) in corners


class TestPredicates:
    def test_contains_point_boundary_inclusive(self):
        r = Rect(0.0, 0.0, 1.0, 1.0)
        assert r.contains_point(Point(0.0, 1.0))
        assert not r.contains_point(Point(1.0001, 0.5))

    def test_contains_rect(self):
        outer = Rect(0.0, 0.0, 10.0, 10.0)
        assert outer.contains_rect(Rect(1.0, 1.0, 9.0, 9.0))
        assert not outer.contains_rect(Rect(5.0, 5.0, 11.0, 9.0))

    def test_intersects(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        assert a.intersects(Rect(1.0, 1.0, 3.0, 3.0))
        assert a.intersects(Rect(2.0, 2.0, 3.0, 3.0))  # touching counts
        assert not a.intersects(Rect(2.1, 2.1, 3.0, 3.0))

    def test_intersects_circle(self):
        r = Rect(0.0, 0.0, 1.0, 1.0)
        assert r.intersects_circle(Point(2.0, 0.5), 1.0)
        assert not r.intersects_circle(Point(3.0, 0.5), 1.0)


class TestCombinators:
    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3)).as_tuple() == (0, 0, 3, 3)

    def test_intersection(self):
        assert Rect(0, 0, 2, 2).intersection(Rect(1, 1, 3, 3)).as_tuple() == (1, 1, 2, 2)

    def test_intersection_disjoint_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3))

    def test_intersection_area(self):
        assert Rect(0, 0, 2, 2).intersection_area(Rect(1, 1, 3, 3)) == 1.0
        assert Rect(0, 0, 1, 1).intersection_area(Rect(5, 5, 6, 6)) == 0.0

    def test_enlarged(self):
        assert Rect(1, 1, 2, 2).enlarged(1.0, 2.0).as_tuple() == (0, -1, 3, 4)

    def test_translated(self):
        assert Rect(0, 0, 1, 1).translated(5, -1).as_tuple() == (5, -1, 6, 0)

    def test_enlargement_area(self):
        assert Rect(0, 0, 1, 1).enlargement_area(Rect(0, 0, 2, 1)) == pytest.approx(1.0)

    def test_min_distance_to_point(self):
        r = Rect(0, 0, 1, 1)
        assert r.min_distance_to_point(Point(0.5, 0.5)) == 0.0
        assert r.min_distance_to_point(Point(4.0, 5.0)) == pytest.approx(5.0)


class TestRectProperties:
    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains_rect(a)
        assert union.contains_rect(b)

    @given(rects(), rects())
    def test_intersection_area_symmetric(self, a, b):
        assert a.intersection_area(b) == pytest.approx(b.intersection_area(a))

    @given(rects(), rects())
    def test_intersection_area_bounded_by_each_area(self, a, b):
        overlap = a.intersection_area(b)
        assert overlap <= a.area + 1e-6
        assert overlap <= b.area + 1e-6

    @given(rects())
    def test_union_with_self_is_identity(self, r):
        assert r.union(r) == r
