"""Property-based invariants of the sharded serving layer (Hypothesis).

Four pillars of the serving contract, each checked over arbitrary
generated inputs rather than one curated workload:

- :func:`repro.serve.shard_of` is a stable, in-range, balanced router;
- range answers are ascending-id, shard-count invariant and equal to a
  brute-force predicate scan;
- the ``(distance, oid)`` merge of per-shard local top-k lists equals
  the brute-force global top-k (the theorem behind the kNN fan-out);
- the published epoch is monotone and counts exactly the non-empty
  mutation batches, under arbitrary operation interleavings.

See ``docs/htap.md`` for the snapshot semantics these invariants back.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector
from repro.objects.knn import KNNQuery, _rank_distances
from repro.objects.moving_object import MovingObject
from repro.objects.queries import RangeQuery, RectangularRange
from repro.serve import ShardedIndex, shard_of

SPACE = Rect(0.0, 0.0, 1000.0, 1000.0)

MAX_UPDATE_INTERVAL = 40.0

SHARD_COUNTS = (1, 2, 3, 5)

# Per-example index builds dominate the runtime; cap the example count
# so the whole module stays inside the fast tier's budget.
PROPERTY_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

coords = st.floats(min_value=1.0, max_value=999.0, allow_nan=False, allow_infinity=False)
velocities = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False, allow_infinity=False)
query_times = st.floats(min_value=0.0, max_value=5.0, allow_nan=False, allow_infinity=False)


@st.composite
def moving_objects(draw, min_size: int = 0, max_size: int = 40):
    """A list of MovingObjects with unique ids, safely inside SPACE."""
    oids = draw(
        st.lists(
            st.integers(min_value=0, max_value=1_000_000),
            min_size=min_size,
            max_size=max_size,
            unique=True,
        )
    )
    return [
        MovingObject(
            oid,
            position=Point(draw(coords), draw(coords)),
            velocity=Vector(draw(velocities), draw(velocities)),
            reference_time=0.0,
        )
        for oid in oids
    ]


@st.composite
def range_queries(draw):
    """A rectangular timeslice query with a non-degenerate rect."""
    x0, x1 = sorted((draw(coords), draw(coords)))
    y0, y1 = sorted((draw(coords), draw(coords)))
    t = draw(query_times)
    return RangeQuery(
        range=RectangularRange(Rect(x0, y0, x1 + 1.0, y1 + 1.0)),
        start_time=t,
        end_time=t,
    )


def _build(shards: int) -> ShardedIndex:
    return ShardedIndex.build(
        family="Bx",
        shards=shards,
        executor="serial",
        space=SPACE,
        buffer_pages=32,
        max_update_interval=MAX_UPDATE_INTERVAL,
    )


# ----------------------------------------------------------------------
# shard_of: stable, in-range, balanced
# ----------------------------------------------------------------------
@PROPERTY_SETTINGS
@given(
    oid=st.integers(min_value=0, max_value=2**63 - 1),
    num_shards=st.integers(min_value=1, max_value=64),
)
def test_shard_of_is_stable_and_in_range(oid, num_shards):
    """Routing is a pure function of (oid, num_shards) with an in-range result."""
    first = shard_of(oid, num_shards)
    assert 0 <= first < num_shards
    assert shard_of(oid, num_shards) == first  # no hidden state
    assert shard_of(oid, 1) == 0


@PROPERTY_SETTINGS
@given(
    start=st.integers(min_value=0, max_value=2**40),
    num_shards=st.integers(min_value=2, max_value=8),
)
def test_shard_of_balances_consecutive_ids(start, num_shards):
    """Consecutive ids — the common allocation pattern — spread evenly.

    The Fibonacci hash turns a consecutive block into a low-discrepancy
    sequence; no shard should see more than twice its fair share of a
    block comfortably larger than the shard count.
    """
    block = 128 * num_shards
    counts = [0] * num_shards
    for oid in range(start, start + block):
        counts[shard_of(oid, num_shards)] += 1
    assert max(counts) <= 2 * (block // num_shards)
    assert min(counts) > 0


# ----------------------------------------------------------------------
# Range merge: ascending ids, shard-count invariant, brute-force exact
# ----------------------------------------------------------------------
@PROPERTY_SETTINGS
@given(objects=moving_objects(), query=range_queries())
def test_range_answers_are_sorted_invariant_and_exact(objects, query):
    """Exact range answers equal the predicate scan, at every shard count."""
    expected = sorted(obj.oid for obj in objects if query.matches(obj))
    for shards in SHARD_COUNTS:
        index = _build(shards)
        try:
            index.bulk_load(objects)
            answer = index.range_query(query)
            assert answer == sorted(answer), shards  # canonical ascending-id order
            assert answer == expected, shards
        finally:
            index.close()


# ----------------------------------------------------------------------
# kNN merge: per-shard top-k merged by (distance, oid) == global top-k
# ----------------------------------------------------------------------
@PROPERTY_SETTINGS
@given(
    objects=moving_objects(min_size=1),
    k=st.integers(min_value=1, max_value=12),
    cx=coords,
    cy=coords,
    query_time=query_times,
)
def test_knn_merge_equals_brute_force_top_k(objects, k, cx, cy, query_time):
    """The sharded (distance, oid) merge reproduces the global top-k.

    Brute force ranks *every* object through the same vectorized kernel
    the index families use, so the comparison is bit-identical — any
    divergence is a merge bug, not float noise.
    """
    probe = KNNQuery(center=Point(cx, cy), k=k, query_time=query_time, issue_time=0.0)
    pool = {
        obj.oid: (
            obj.oid,
            obj.position.x,
            obj.position.y,
            obj.velocity.vx,
            obj.velocity.vy,
            obj.reference_time,
        )
        for obj in objects
    }
    oids, distances = _rank_distances(pool, probe.center, probe.query_time)
    order = np.lexsort((oids, distances))
    expected = [(int(oids[j]), float(distances[j])) for j in order[:k]]

    for shards in SHARD_COUNTS:
        index = _build(shards)
        try:
            index.bulk_load(objects)
            assert index.knn_query_batch([probe], space=SPACE) == [expected], shards
        finally:
            index.close()


# ----------------------------------------------------------------------
# Epoch bookkeeping: monotone, dense, and quiet on reads
# ----------------------------------------------------------------------
@st.composite
def interleavings(draw):
    """An arbitrary schedule of mutations, queries, pins and no-ops."""
    return draw(
        st.lists(
            st.sampled_from(["update", "insert", "delete", "query", "pin", "empty"]),
            min_size=1,
            max_size=30,
        )
    )


@PROPERTY_SETTINGS
@given(objects=moving_objects(min_size=4, max_size=20), schedule=interleavings())
def test_epoch_is_monotone_and_counts_mutation_batches(objects, schedule):
    """Under any interleaving: epochs only grow, one per non-empty batch.

    Queries and empty batches never consume an epoch (a silent epoch gap
    would break the WAL's dense numbering on recovery), and a pinned
    epoch is always at or below the published one.
    """
    query = RangeQuery(
        range=RectangularRange(Rect(0.0, 0.0, 1000.0, 1000.0)),
        start_time=0.0,
        end_time=0.0,
    )
    index = _build(2)
    try:
        index.bulk_load(objects)
        expected_epoch = 1  # the bulk load itself is batch #1
        assert index.epoch == expected_epoch
        alive = list(objects)
        for step in schedule:
            before = index.epoch
            if step == "update" and alive:
                moved = dataclasses.replace(
                    alive[0], position=Point(500.0, 500.0), reference_time=1.0
                )
                index.update_batch([(alive[0], moved)])
                alive[0] = moved
                expected_epoch += 1
            elif step == "insert":
                fresh = MovingObject(
                    2_000_000 + expected_epoch,
                    position=Point(10.0, 10.0),
                    velocity=Vector(0.0, 0.0),
                    reference_time=0.0,
                )
                index.insert_batch([fresh])
                alive.append(fresh)
                expected_epoch += 1
            elif step == "delete" and alive:
                index.delete_batch([alive.pop()])
                expected_epoch += 1
            elif step == "query":
                index.range_query_batch([query])
            elif step == "pin":
                with index.pin() as pinned:
                    assert pinned <= index.epoch
                    index.range_query_batch([query], epoch=pinned)
            elif step == "empty":
                index.update_batch([])
                index.insert_batch([])
                index.delete_batch([])
            assert index.epoch >= before  # monotone
            assert index.epoch == expected_epoch  # dense: one per non-empty batch
    finally:
        index.close()


@PROPERTY_SETTINGS
@given(objects=moving_objects(min_size=6, max_size=20))
def test_pinned_answer_is_frozen_while_updates_stream(objects):
    """A pinned epoch's answer never changes, however many batches follow."""
    everything = RangeQuery(
        range=RectangularRange(Rect(0.0, 0.0, 1000.0, 1000.0)),
        start_time=0.0,
        end_time=0.0,
    )
    index = _build(2)
    try:
        index.bulk_load(objects)
        with index.pin() as pinned:
            frozen = index.range_query_batch([everything], epoch=pinned)
            for victim in list(objects):
                index.delete_batch([victim])
                assert index.range_query_batch([everything], epoch=pinned) == frozen
        assert index.range_query([everything][0]) == []
    finally:
        index.close()


def test_shard_of_rejects_nonpositive_shard_counts():
    with pytest.raises(ValueError):
        shard_of(7, 0)
    with pytest.raises(ValueError):
        shard_of(7, -2)
