"""Shard-vs-unsharded equivalence of the serving layer.

The :class:`repro.serve.ShardedIndex` must be a *topology* change, not a
semantics change: for every index family underneath, the sharded answers
(range queries in canonical ascending-id order, kNN in ``(distance, oid)``
order) must be identical to the unsharded index's answers, independent of
the shard count, with the aggregate I/O counters exactly the sum of the
per-shard counters.  A quiescent sharded index must also serve concurrent
query batches safely (per-shard locks serialize the buffer bookkeeping).
"""

from __future__ import annotations

import threading

import pytest

from repro.bench.harness import build_standard_indexes
from repro.objects.knn import KNNQuery
from repro.serve import ServeConfig, ShardedIndex, shard_of
from repro.workload.events import UpdateEvent
from repro.workload.generator import build_workload
from repro.workload.parameters import WorkloadParameters

PARAMS = WorkloadParameters(num_objects=400, time_duration=40.0, num_queries=12)

WINDOW = 1.0

INDEX_NAMES = ("Bx", "Bx(VP)", "TPR*", "TPR*(VP)")


@pytest.fixture(scope="module")
def workload():
    return build_workload("SA", PARAMS)


@pytest.fixture(scope="module")
def batches(workload):
    return workload.grouped_events(window=WINDOW)


def _build(workload, name, shards=1):
    index = build_standard_indexes(workload, PARAMS, which=(name,), shards=shards)[name]
    index.bulk_load(workload.initial_objects)
    return index


def _replay(index, batches):
    """Replay the grouped event stream; returns the per-query answers."""
    answers = []
    for batch in batches:
        if isinstance(batch[0], UpdateEvent):
            index.update_batch([(event.old, event.new) for event in batch])
        else:
            answers.extend(index.range_query_batch([event.query for event in batch]))
    return answers


def _knn_probes(workload, ks=(1, 5, 10)):
    events = workload.sorted_events()
    issue_time = events[-1].time if events else 0.0
    return [
        KNNQuery(
            center=event.query.range.center,
            k=ks[i % len(ks)],
            query_time=issue_time + event.query.predictive_time,
            issue_time=issue_time,
        )
        for i, event in enumerate(workload.query_events)
    ]


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
def test_shard_routing_is_deterministic_and_balanced():
    for num_shards in (1, 2, 4, 7):
        assignments = [shard_of(oid, num_shards) for oid in range(10_000)]
        assert assignments == [shard_of(oid, num_shards) for oid in range(10_000)]
        assert set(assignments) <= set(range(num_shards))
        counts = [assignments.count(shard) for shard in range(num_shards)]
        # The multiplicative hash must spread sequential ids evenly: no
        # shard may deviate from the fair share by more than 20%.
        fair = 10_000 / num_shards
        assert all(0.8 * fair <= count <= 1.2 * fair for count in counts), counts


def test_shard_of_rejects_bad_counts():
    with pytest.raises(ValueError):
        shard_of(1, 0)


# ----------------------------------------------------------------------
# Answer equivalence (the acceptance claim)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", INDEX_NAMES)
def test_sharded_answers_match_unsharded(workload, batches, name):
    """Range and kNN answers are bit-identical to unsharded, for 2 and 4 shards.

    Range answers are compared in the serving layer's canonical
    ascending-id order (sorted unsharded answer == sharded answer,
    element for element); kNN answers — ids, distances and tie order —
    must match exactly, since both sides rank by ``(distance, oid)``.
    """
    unsharded = _build(workload, name)
    reference = [sorted(result) for result in _replay(unsharded, batches)]
    probes = _knn_probes(workload)
    reference_knn = unsharded.knn_query_batch(probes, space=PARAMS.space)

    per_count = {}
    for shards in (2, 4):
        sharded = _build(workload, name, shards=shards)
        answers = _replay(sharded, batches)
        assert answers == reference, (name, shards)
        knn = sharded.knn_query_batch(probes, space=PARAMS.space)
        assert knn == reference_knn, (name, shards)
        per_count[shards] = (answers, knn)
    # Shard-count invariance follows, but assert it directly too.
    assert per_count[2] == per_count[4], name


@pytest.mark.parametrize("name", INDEX_NAMES)
def test_sharded_contents_and_flags_match(workload, name):
    """Routing by id preserves per-object semantics of the update surface."""
    unsharded = _build(workload, name)
    sharded = _build(workload, name, shards=3)
    updates = workload.update_events[:200]
    pairs = [(event.old, event.new) for event in updates]
    assert sharded.update_batch(pairs) == unsharded.update_batch(pairs)
    assert len(sharded) == len(unsharded)

    deletes = [event.new for event in updates[:50]]
    assert sharded.delete_batch(deletes) == unsharded.delete_batch(deletes)
    assert len(sharded) == len(unsharded)
    # Deleting the same snapshots again fails on both sides, flag for flag.
    assert sharded.delete_batch(deletes) == unsharded.delete_batch(deletes)


def test_single_probe_knn_matches_batch(workload, batches):
    index = _build(workload, "TPR*", shards=4)
    _replay(index, batches)
    probes = _knn_probes(workload)[:4]
    batch_answers = index.knn_query_batch(probes, space=PARAMS.space)
    for probe, expected in zip(probes, batch_answers):
        single = index.knn_query(
            probe.center,
            probe.k,
            probe.query_time,
            issue_time=probe.issue_time,
            space=PARAMS.space,
        )
        assert single == expected


# ----------------------------------------------------------------------
# I/O accounting
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_aggregate_stats_equal_sum_of_shards(workload, batches, shards):
    """The aggregate counters are exactly the sum of the per-shard IOStats."""
    index = _build(workload, "Bx", shards=shards)
    _replay(index, batches)
    index.knn_query_batch(_knn_probes(workload), space=PARAMS.space)
    if shards == 1:
        return  # unsharded indexes expose their IOStats directly
    stats = index.buffer.stats
    parts = index.shard_stats()
    assert stats.physical.reads == sum(p.physical.reads for p in parts)
    assert stats.physical.writes == sum(p.physical.writes for p in parts)
    assert stats.logical.reads == sum(p.logical.reads for p in parts)
    assert stats.buffer.hits == sum(p.buffer.hits for p in parts)
    assert stats.buffer.misses == sum(p.buffer.misses for p in parts)


@pytest.mark.parametrize("name", ("Bx", "TPR*"))
def test_one_shard_io_equals_unsharded(workload, batches, name):
    """A single-shard ShardedIndex performs exactly the unsharded I/O.

    With one shard the router is the identity, every batch call forwards
    unchanged, and the aggregate counters must equal the plain index's
    totals counter for counter — the anchor for the sum-of-shards
    accounting at higher shard counts.
    """
    plain = _build(workload, name)
    single = _build(workload, name, shards=1)
    wrapped = ShardedIndex(
        [_build(workload, name)], ServeConfig(name=name, space=PARAMS.space)
    )
    # shards=1 from the harness returns the plain index itself.
    assert not isinstance(single, ShardedIndex)

    _replay(plain, batches)
    _replay(wrapped, batches)
    probes = _knn_probes(workload)
    plain_knn = plain.knn_query_batch(probes, space=PARAMS.space)
    wrapped_knn = wrapped.knn_query_batch(probes, space=PARAMS.space)
    assert wrapped_knn == plain_knn

    plain_stats = plain.buffer.stats
    wrapped_stats = wrapped.buffer.stats
    assert wrapped_stats.physical.reads == plain_stats.physical.reads
    assert wrapped_stats.physical.writes == plain_stats.physical.writes
    assert wrapped_stats.logical.reads == plain_stats.logical.reads
    assert wrapped_stats.buffer.hits == plain_stats.buffer.hits
    assert wrapped_stats.buffer.misses == plain_stats.buffer.misses


@pytest.mark.parametrize("name", ("Bx", "TPR*"))
def test_sharded_logical_io_within_tolerance(workload, batches, name):
    """Summed per-shard node accesses stay comparable to the unsharded totals.

    Sharding trades one index of n objects for N of n/N: updates descend
    shallower trees, queries pay N root descents.  The summed logical
    reads (buffer-size independent, unlike physical I/O at N buffers)
    must stay within a factor of the unsharded replay's — the serving
    layer amortizes, it does not multiply, the index work.
    """
    plain = _build(workload, name)
    sharded = _build(workload, name, shards=4)
    _replay(plain, batches)
    _replay(sharded, batches)
    plain_reads = plain.buffer.stats.logical.reads
    sharded_reads = sharded.buffer.stats.logical.reads
    assert 0.3 * plain_reads <= sharded_reads <= 3.0 * plain_reads, (
        name,
        plain_reads,
        sharded_reads,
    )


# ----------------------------------------------------------------------
# Construction guards
# ----------------------------------------------------------------------
def test_shards_must_not_share_a_buffer(workload):
    shard = build_standard_indexes(workload, PARAMS, which=("TPR*",))["TPR*"]
    with pytest.raises(ValueError):
        ShardedIndex([shard, shard])
    with pytest.raises(ValueError):
        ShardedIndex([])


def test_update_must_keep_object_id(workload):
    index = _build(workload, "TPR*", shards=2)
    event = workload.update_events[0]
    bad_new = event.new.__class__(
        oid=event.new.oid + 1,
        position=event.new.position,
        velocity=event.new.velocity,
        reference_time=event.new.reference_time,
    )
    with pytest.raises(ValueError):
        index.update(event.old, bad_new)
    with pytest.raises(ValueError):
        index.update_batch([(event.old, bad_new)])


# ----------------------------------------------------------------------
# Thread safety (quiescent index, concurrent query batches)
# ----------------------------------------------------------------------
def test_concurrent_query_batches_are_safe(workload, batches):
    """Concurrent range/kNN batches against a quiescent sharded index.

    Several caller threads issue interleaved query batches; every answer
    must equal the single-threaded reference and no exception may escape
    (the per-shard locks serialize each shard's buffer bookkeeping).
    """
    index = _build(workload, "TPR*", shards=4)
    _replay(index, batches)
    queries = [event.query for event in workload.query_events]
    probes = _knn_probes(workload)
    reference_range = index.range_query_batch(queries)
    reference_knn = index.knn_query_batch(probes, space=PARAMS.space)

    errors = []
    barrier = threading.Barrier(6)

    def worker():
        try:
            barrier.wait(timeout=30)
            for _ in range(3):
                assert index.range_query_batch(queries) == reference_range
                assert index.knn_query_batch(probes, space=PARAMS.space) == reference_knn
        except Exception as exc:  # noqa: BLE001 - surfaced to the main thread
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    assert not any(thread.is_alive() for thread in threads)
    index.close()
