"""Tests for the kNN filter-and-refine query and the Section 5.5 τ adaptation."""

import random

import pytest

from repro.bxtree.bx_tree import BxTree
from repro.core.adaptation import TauMonitor, refresh_taus
from repro.core.dva import DominantVelocityAxis
from repro.core.partitioned_index import (
    analyze_sample,
    make_vp_tprstar_tree,
    sample_velocities_from_objects,
)
from repro.core.velocity_analyzer import VelocityPartitioning
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.objects.knn import initial_knn_radius, k_nearest_neighbors
from repro.storage.buffer_manager import BufferManager
from repro.tprtree.tprstar_tree import TPRStarTree

from tests.conftest import SMALL_SPACE, make_objects


def brute_force_knn(objects, center, k, time):
    ranked = sorted(
        ((obj.position_at(time).distance_to(center), obj.oid) for obj in objects)
    )
    return [(oid, dist) for dist, oid in ranked[:k]]


class TestKNN:
    def _lookup(self, objects):
        by_id = {obj.oid: obj for obj in objects}
        return by_id.get

    @pytest.mark.parametrize("k", [1, 5, 12])
    def test_knn_on_tprstar_matches_brute_force(self, k):
        objects = make_objects(150, seed=31, max_speed=40.0)
        tree = TPRStarTree(buffer=BufferManager(capacity=64), max_entries=8)
        for obj in objects:
            tree.insert(obj)
        rng = random.Random(4)
        for _ in range(5):
            center = Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
            time = rng.uniform(0.0, 30.0)
            result = k_nearest_neighbors(
                tree, center, k, time, self._lookup(objects),
                space=SMALL_SPACE, population=len(objects),
            )
            expected = brute_force_knn(objects, center, k, time)
            assert [oid for oid, _ in result] == [oid for oid, _ in expected]

    def test_knn_on_bx_tree(self):
        objects = make_objects(120, seed=33, max_speed=30.0)
        tree = BxTree(
            buffer=BufferManager(capacity=64),
            space=SMALL_SPACE,
            curve_order=6,
            max_update_interval=40.0,
            page_size=512,
        )
        for obj in objects:
            tree.insert(obj)
        center = Point(5_000.0, 5_000.0)
        result = k_nearest_neighbors(
            tree, center, 7, 15.0, self._lookup(objects),
            space=SMALL_SPACE, population=len(objects),
        )
        assert [oid for oid, _ in result] == [
            oid for oid, _ in brute_force_knn(objects, center, 7, 15.0)
        ]

    def test_knn_on_vp_index(self):
        objects = make_objects(150, seed=35, axis_aligned=True, max_speed=40.0)
        partitioning = analyze_sample(sample_velocities_from_objects(objects), k=2)
        index = make_vp_tprstar_tree(partitioning, buffer_pages=32, max_entries=8)
        for obj in objects:
            index.insert(obj)
        center = Point(4_000.0, 6_000.0)
        result = k_nearest_neighbors(
            index, center, 9, 20.0, self._lookup(objects),
            space=SMALL_SPACE, population=len(objects),
        )
        assert [oid for oid, _ in result] == [
            oid for oid, _ in brute_force_knn(objects, center, 9, 20.0)
        ]

    def test_distances_are_sorted_and_correct(self):
        objects = make_objects(80, seed=37)
        tree = TPRStarTree(buffer=BufferManager(capacity=32), max_entries=8)
        for obj in objects:
            tree.insert(obj)
        center = Point(2_000.0, 2_000.0)
        result = k_nearest_neighbors(
            tree, center, 10, 5.0, self._lookup(objects),
            space=SMALL_SPACE, population=len(objects),
        )
        distances = [d for _, d in result]
        assert distances == sorted(distances)
        for oid, distance in result:
            obj = next(o for o in objects if o.oid == oid)
            assert obj.position_at(5.0).distance_to(center) == pytest.approx(distance)

    def test_k_larger_than_population(self):
        objects = make_objects(5, seed=39)
        tree = TPRStarTree(buffer=BufferManager(capacity=16), max_entries=8)
        for obj in objects:
            tree.insert(obj)
        result = k_nearest_neighbors(
            tree, Point(0.0, 0.0), 50, 1.0, self._lookup(objects),
            space=SMALL_SPACE, population=5,
        )
        assert len(result) == 5

    def test_k_zero(self):
        tree = TPRStarTree(buffer=BufferManager(capacity=16))
        assert k_nearest_neighbors(tree, Point(0, 0), 0, 1.0, lambda oid: None) == []

    def test_initial_radius_scales_with_density(self):
        sparse = initial_knn_radius(SMALL_SPACE, population=10, k=3)
        dense = initial_knn_radius(SMALL_SPACE, population=10_000, k=3)
        assert sparse > dense
        assert initial_knn_radius(SMALL_SPACE, population=0, k=3) >= SMALL_SPACE.width


class TestTauAdaptation:
    def _partitioning(self):
        return VelocityPartitioning(
            dvas=[
                DominantVelocityAxis(axis=Vector(1.0, 0.0), tau=1.0),
                DominantVelocityAxis(axis=Vector(0.0, 1.0), tau=1.0),
            ]
        )

    def test_monitor_routes_to_nearest_axis(self):
        monitor = TauMonitor(self._partitioning(), reservoir_size=100)
        monitor.observe(Vector(50.0, 2.0))   # x-axis traveler
        monitor.observe(Vector(3.0, 40.0))   # y-axis traveler
        assert monitor.observations(0) == 1
        assert monitor.observations(1) == 1
        assert list(monitor.samples(0)) == [pytest.approx(2.0)]

    def test_reservoir_is_bounded(self):
        monitor = TauMonitor(self._partitioning(), reservoir_size=50)
        for i in range(500):
            monitor.observe(Vector(30.0, (i % 10) / 10.0))
        assert len(monitor.samples(0)) == 50
        assert monitor.observations(0) == 500

    def test_refresh_keeps_tau_without_enough_samples(self):
        partitioning = self._partitioning()
        monitor = TauMonitor(partitioning)
        for _ in range(10):
            monitor.observe(Vector(30.0, 0.5))
        updated = refresh_taus(monitor, min_samples=50)
        assert updated.dvas[0].tau == partitioning.dvas[0].tau

    def test_refresh_adapts_to_slower_traffic(self):
        """Rush hour: perpendicular speeds drop, so the recomputed τ drops too
        (and vice versa), while the axes stay fixed (Section 5.5)."""
        rng = random.Random(0)
        partitioning = self._partitioning()
        monitor = TauMonitor(partitioning, reservoir_size=1_000)
        # Phase 1: wide perpendicular spread plus clear outliers.
        for _ in range(800):
            monitor.observe(Vector(60.0, rng.uniform(0.0, 8.0)))
        for _ in range(80):
            monitor.observe(Vector(60.0, rng.uniform(40.0, 50.0)))
        wide = refresh_taus(monitor)
        # Phase 2: a fresh monitor sees only slow perpendicular drift.
        monitor2 = TauMonitor(wide, reservoir_size=1_000)
        for _ in range(800):
            monitor2.observe(Vector(60.0, rng.uniform(0.0, 2.0)))
        narrow = refresh_taus(monitor2)
        assert narrow.dvas[0].tau < wide.dvas[0].tau
        assert narrow.dvas[0].axis == wide.dvas[0].axis

    def test_invalid_reservoir_size(self):
        with pytest.raises(ValueError):
            TauMonitor(self._partitioning(), reservoir_size=1)
