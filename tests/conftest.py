"""Shared fixtures for the test suite."""

from __future__ import annotations

import math
import os
import random
import sys

import pytest

# Allow running the tests without installing the package (e.g. straight from
# a source checkout): put src/ on the path if repro is not importable.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector
from repro.objects.moving_object import MovingObject
from repro.objects.queries import CircularRange, RangeQuery, TimeSliceRangeQuery
from repro.workload.parameters import WorkloadParameters


def pytest_configure(config) -> None:
    # The marker is registered in pyproject.toml; registering here as well
    # keeps `pytest tests` working from contexts that do not read the
    # project ini (e.g. a vendored subtree).  The two tiers:
    #   fast: python -m pytest -m "not slow" -q     (CI per-push gate)
    #   full: python -m pytest -x -q                (tier-1 verify)
    config.addinivalue_line(
        "markers", "slow: long replay/figure benchmarks excluded from the fast CI tier"
    )


SMALL_SPACE = Rect(0.0, 0.0, 10_000.0, 10_000.0)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def small_space() -> Rect:
    return SMALL_SPACE


@pytest.fixture
def small_params(small_space) -> WorkloadParameters:
    """Tiny but non-trivial parameters for integration tests."""
    return WorkloadParameters(
        num_objects=150,
        max_speed=50.0,
        max_update_interval=40.0,
        query_radius=800.0,
        query_predictive_time=20.0,
        time_duration=60.0,
        num_queries=10,
        buffer_pages=8,
        page_size=512,
        space=small_space,
        seed=7,
    )


def make_objects(
    count: int,
    space: Rect = SMALL_SPACE,
    max_speed: float = 50.0,
    seed: int = 0,
    axis_aligned: bool = False,
    start_time: float = 0.0,
) -> list:
    """Random moving objects, optionally with axis-aligned velocities."""
    rng = random.Random(seed)
    objects = []
    for oid in range(count):
        position = Point(
            rng.uniform(space.x_min, space.x_max),
            rng.uniform(space.y_min, space.y_max),
        )
        speed = rng.uniform(1.0, max_speed)
        if axis_aligned:
            if rng.random() < 0.5:
                velocity = Vector(speed * rng.choice((-1.0, 1.0)), 0.0)
            else:
                velocity = Vector(0.0, speed * rng.choice((-1.0, 1.0)))
        else:
            angle = rng.uniform(0.0, 2.0 * math.pi)
            velocity = Vector(speed * math.cos(angle), speed * math.sin(angle))
        objects.append(
            MovingObject(
                oid=oid, position=position, velocity=velocity, reference_time=start_time
            )
        )
    return objects


def brute_force_range(objects, query: RangeQuery) -> set:
    """Ground-truth answer of a range query by exhaustive checking."""
    return {obj.oid for obj in objects if query.matches(obj)}


def make_circular_query(
    center: Point, radius: float, time: float, issue_time: float = 0.0
) -> RangeQuery:
    return TimeSliceRangeQuery(
        CircularRange(center=center, radius=radius), time=time, issue_time=issue_time
    )


@pytest.fixture
def axis_objects():
    """Objects whose velocities hug the x/y axes (two clear DVAs)."""
    return make_objects(200, axis_aligned=True, seed=3)


@pytest.fixture
def random_objects():
    return make_objects(200, axis_aligned=False, seed=5)
