"""Tests for DVA coordinate frames and the analytic cost model of Section 4."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cost_model import (
    compare,
    crossover_time,
    partitioned_search_area,
    partitioned_search_volume,
    search_volume_difference,
    search_volume_difference_rate,
    unpartitioned_search_area,
    unpartitioned_search_volume,
)
from repro.core.dva import CoordinateFrame, DominantVelocityAxis
from repro.geometry.moving_rect import MovingRect
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.sweep import sweeping_area
from repro.geometry.vector import Vector
from repro.objects.moving_object import MovingObject

angles = st.floats(min_value=-math.pi, max_value=math.pi)
coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


class TestCoordinateFrame:
    def test_axis_is_normalized(self):
        frame = CoordinateFrame(Vector(3.0, 4.0))
        assert frame.axis.magnitude == pytest.approx(1.0)

    def test_zero_axis_raises(self):
        with pytest.raises(ValueError):
            CoordinateFrame(Vector(0.0, 0.0))

    def test_identity_frame(self):
        frame = CoordinateFrame(Vector(1.0, 0.0))
        assert frame.to_frame_point(Point(3.0, 4.0)) == Point(3.0, 4.0)

    def test_quarter_turn_frame(self):
        frame = CoordinateFrame(Vector(0.0, 1.0))
        transformed = frame.to_frame_point(Point(3.0, 4.0))
        assert transformed.x == pytest.approx(4.0)
        assert transformed.y == pytest.approx(-3.0)

    @settings(max_examples=100, deadline=None)
    @given(angles, coords, coords)
    def test_point_round_trip(self, angle, x, y):
        frame = CoordinateFrame(Vector(math.cos(angle), math.sin(angle)))
        p = Point(x, y)
        back = frame.from_frame_point(frame.to_frame_point(p))
        assert back.x == pytest.approx(x, abs=1e-6)
        assert back.y == pytest.approx(y, abs=1e-6)

    @settings(max_examples=100, deadline=None)
    @given(angles, coords, coords, coords, coords)
    def test_rotation_preserves_distances(self, angle, x1, y1, x2, y2):
        frame = CoordinateFrame(Vector(math.cos(angle), math.sin(angle)))
        a, b = Point(x1, y1), Point(x2, y2)
        original = a.distance_to(b)
        rotated = frame.to_frame_point(a).distance_to(frame.to_frame_point(b))
        assert rotated == pytest.approx(original, rel=1e-9, abs=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(angles, coords, coords)
    def test_vector_round_trip_preserves_magnitude(self, angle, vx, vy):
        frame = CoordinateFrame(Vector(math.cos(angle), math.sin(angle)))
        v = Vector(vx, vy)
        assert frame.to_frame_vector(v).magnitude == pytest.approx(v.magnitude, abs=1e-6)
        back = frame.from_frame_vector(frame.to_frame_vector(v))
        assert back.vx == pytest.approx(vx, abs=1e-6)
        assert back.vy == pytest.approx(vy, abs=1e-6)

    def test_rect_transform_bounds_rotated_corners(self):
        frame = CoordinateFrame(Vector(math.cos(0.3), math.sin(0.3)))
        rect = Rect(0.0, 0.0, 10.0, 4.0)
        bound = frame.to_frame_rect(rect)
        for corner in rect.corners():
            transformed = frame.to_frame_point(corner)
            assert bound.contains_point(transformed)

    def test_object_transform_keeps_oid_and_time(self):
        frame = CoordinateFrame(Vector(0.0, 1.0))
        obj = MovingObject(5, Point(1.0, 2.0), Vector(3.0, 4.0), 7.0)
        transformed = frame.to_frame_object(obj)
        assert transformed.oid == 5
        assert transformed.reference_time == 7.0
        assert transformed.speed == pytest.approx(obj.speed)

    def test_trajectory_commutes_with_transform(self):
        """Transforming then projecting equals projecting then transforming."""
        frame = CoordinateFrame(Vector(math.cos(1.1), math.sin(1.1)))
        obj = MovingObject(1, Point(10.0, -5.0), Vector(2.0, 3.0), 0.0)
        direct = frame.to_frame_point(obj.position_at(13.0))
        via_frame = frame.to_frame_object(obj).position_at(13.0)
        assert direct.x == pytest.approx(via_frame.x, abs=1e-9)
        assert direct.y == pytest.approx(via_frame.y, abs=1e-9)


class TestDominantVelocityAxis:
    def test_axis_normalized_and_tau_checked(self):
        dva = DominantVelocityAxis(axis=Vector(2.0, 0.0), tau=3.0)
        assert dva.axis.magnitude == pytest.approx(1.0)
        with pytest.raises(ValueError):
            DominantVelocityAxis(axis=Vector(1.0, 0.0), tau=-1.0)

    def test_accepts_respects_tau(self):
        dva = DominantVelocityAxis(axis=Vector(1.0, 0.0), tau=2.0)
        assert dva.accepts(Vector(100.0, 1.5))
        assert not dva.accepts(Vector(100.0, 2.5))

    def test_angle_degrees_folded(self):
        dva = DominantVelocityAxis(axis=Vector(-1.0, 0.0))
        assert dva.angle_degrees() == pytest.approx(0.0) or dva.angle_degrees() == pytest.approx(180.0) % 180

    def test_with_tau(self):
        dva = DominantVelocityAxis(axis=Vector(0.0, 1.0), tau=5.0)
        assert dva.with_tau(1.0).tau == 1.0
        assert dva.with_tau(1.0).axis == dva.axis


class TestCostModelEquations:
    def test_equation2_matches_sweeping_area(self):
        """Equation 2 is the swept area of the transformed node: a d x d square
        expanding at speed v on all sides."""
        d, v = 10.0, 3.0
        node = MovingRect(Rect(0, 0, d, d), -v, -v, v, v)
        for t in (0.0, 1.0, 5.0, 20.0):
            assert sweeping_area(node, t) == pytest.approx(unpartitioned_search_area(d, v, t))

    def test_equation3_is_linear_in_time(self):
        d, v = 10.0, 3.0
        a1 = partitioned_search_area(d, v, 1.0) - partitioned_search_area(d, v, 0.0)
        a2 = partitioned_search_area(d, v, 2.0) - partitioned_search_area(d, v, 1.0)
        assert a1 == pytest.approx(a2)

    def test_equations_4_and_5_are_integrals_of_2_and_3(self):
        d, v, th = 8.0, 2.5, 17.0
        steps = 20000
        dt = th / steps
        numeric_unpart = sum(
            unpartitioned_search_area(d, v, (i + 0.5) * dt) for i in range(steps)
        ) * dt
        numeric_part = sum(
            partitioned_search_area(d, v, (i + 0.5) * dt) for i in range(steps)
        ) * dt
        assert unpartitioned_search_volume(d, v, th) == pytest.approx(numeric_unpart, rel=1e-4)
        assert partitioned_search_volume(d, v, th) == pytest.approx(numeric_part, rel=1e-4)

    def test_equation6_consistency(self):
        d, v, th = 5.0, 1.5, 9.0
        assert search_volume_difference(d, v, th) == pytest.approx(
            partitioned_search_volume(d, v, th) - unpartitioned_search_volume(d, v, th)
        )

    def test_equation7_is_derivative_of_equation6(self):
        d, v, th, eps = 5.0, 1.5, 9.0, 1e-6
        numeric = (
            search_volume_difference(d, v, th + eps) - search_volume_difference(d, v, th - eps)
        ) / (2 * eps)
        assert search_volume_difference_rate(d, v, th) == pytest.approx(numeric, rel=1e-4)

    def test_crossover_time_formula(self):
        d, v = 12.0, 4.0
        t_cross = crossover_time(d, v)
        assert t_cross == pytest.approx(d * math.sqrt(3.0) / (2.0 * v))
        assert search_volume_difference(d, v, t_cross * 0.99) > 0.0
        assert search_volume_difference(d, v, t_cross * 1.01) < 0.0

    def test_crossover_undefined_for_stationary(self):
        with pytest.raises(ValueError):
            crossover_time(10.0, 0.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            unpartitioned_search_area(-1.0, 1.0, 1.0)

    def test_partitioned_wins_eventually_and_by_growing_margin(self):
        d, v = 10.0, 5.0
        comparison_early = compare(d, v, 0.5)
        comparison_late = compare(d, v, 60.0)
        assert comparison_early.improvement_factor < 1.5
        assert comparison_late.improvement_factor > 10.0
