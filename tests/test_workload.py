"""Tests for the workload generators (uniform, network, queries)."""

import math

import pytest

from repro.core.pc_kmeans import find_dvas
from repro.network.generators import chicago_like
from repro.workload.events import UpdateEvent, Workload
from repro.workload.generator import DATASETS, build_workload
from repro.workload.network_workload import NetworkWorkloadGenerator
from repro.workload.parameters import WorkloadParameters
from repro.workload.query_workload import QueryWorkloadGenerator
from repro.workload.uniform import UniformWorkloadGenerator

from repro.objects.moving_object import MovingObject
from repro.geometry.point import Point
from repro.geometry.vector import Vector


def tiny_params(**overrides) -> WorkloadParameters:
    params = WorkloadParameters(
        num_objects=120,
        max_speed=60.0,
        max_update_interval=30.0,
        query_radius=400.0,
        query_predictive_time=15.0,
        time_duration=60.0,
        num_queries=8,
        seed=11,
    )
    return params.scaled(**overrides) if overrides else params


class TestParameters:
    def test_scaled_overrides_only_requested_fields(self):
        params = tiny_params()
        scaled = params.scaled(max_speed=200.0)
        assert scaled.max_speed == 200.0
        assert scaled.num_objects == params.num_objects

    def test_defaults_are_scaled_table1(self):
        params = WorkloadParameters()
        assert params.max_speed == 100.0
        assert params.max_update_interval == 120.0
        assert params.query_predictive_time == 60.0


class TestUniformWorkload:
    def test_shape(self):
        workload = UniformWorkloadGenerator(tiny_params()).generate()
        assert workload.name == "uniform"
        assert workload.num_objects == 120
        assert len(workload.query_events) == 8
        assert len(workload.update_events) > 0

    def test_objects_inside_space_with_bounded_speed(self):
        params = tiny_params()
        workload = UniformWorkloadGenerator(params).generate()
        for obj in workload.initial_objects:
            assert params.space.contains_point(obj.position)
            assert obj.speed <= params.max_speed + 1e-9

    def test_update_interval_respected(self):
        params = tiny_params()
        workload = UniformWorkloadGenerator(params).generate()
        last_update = {}
        for event in workload.update_events:
            previous = last_update.get(event.oid if hasattr(event, "oid") else event.new.oid, 0.0)
            assert event.time - previous <= params.max_update_interval + 1e-9
            last_update[event.new.oid] = event.time

    def test_update_chain_is_consistent(self):
        """Every update's 'old' snapshot is the previous snapshot of that object."""
        workload = UniformWorkloadGenerator(tiny_params()).generate(include_queries=False)
        latest = {obj.oid: obj for obj in workload.initial_objects}
        for event in workload.sorted_events():
            assert isinstance(event, UpdateEvent)
            assert latest[event.old.oid] == event.old
            latest[event.new.oid] = event.new

    def test_deterministic_for_seed(self):
        a = UniformWorkloadGenerator(tiny_params(), seed=5).generate()
        b = UniformWorkloadGenerator(tiny_params(), seed=5).generate()
        assert a.initial_objects == b.initial_objects
        assert len(a.events) == len(b.events)

    def test_velocity_directions_are_not_skewed(self):
        workload = UniformWorkloadGenerator(tiny_params(num_objects=500)).generate(
            include_queries=False
        )
        velocities = workload.velocity_sample()
        result = find_dvas(velocities, k=2)
        mean_perp = sum(
            v.perpendicular_distance_to_axis(result.axes[a])
            for v, a in zip(velocities, result.assignments)
        ) / len(velocities)
        # Uniform directions leave large perpendicular residues even after
        # the best 2-axis fit (compare with the network test below).
        assert mean_perp > 5.0


class TestNetworkWorkload:
    def test_objects_start_on_network_edges_and_velocities_follow_them(self):
        params = tiny_params()
        network = chicago_like(space=params.space)
        workload = NetworkWorkloadGenerator(network, params).generate(include_queries=False)
        directions = {
            round(math.degrees(d.angle) % 180.0, 0) for d in network.iter_edge_directions()
        }
        for obj in workload.initial_objects:
            angle = round(math.degrees(obj.velocity.angle) % 180.0, 0)
            assert any(abs(angle - d) <= 1.0 or abs(angle - d) >= 179.0 for d in directions)

    def test_velocity_skew_is_visible(self):
        params = tiny_params(num_objects=400)
        network = chicago_like(space=params.space)
        workload = NetworkWorkloadGenerator(network, params).generate(include_queries=False)
        velocities = workload.velocity_sample()
        result = find_dvas(velocities, k=2)
        mean_perp = sum(
            v.perpendicular_distance_to_axis(result.axes[a])
            for v, a in zip(velocities, result.assignments)
        ) / len(velocities)
        assert mean_perp < 5.0

    def test_update_chain_consistent_and_positions_continuous(self):
        params = tiny_params()
        network = chicago_like(space=params.space)
        workload = NetworkWorkloadGenerator(network, params).generate(include_queries=False)
        latest = {obj.oid: obj for obj in workload.initial_objects}
        for event in workload.sorted_events():
            previous = latest[event.old.oid]
            assert previous == event.old
            predicted = previous.position_at(event.time)
            # The new reported position continues the old trajectory (objects
            # drive linearly along an edge between updates).
            assert predicted.distance_to(event.new.position) < 1.0
            latest[event.new.oid] = event.new

    def test_speeds_bounded(self):
        params = tiny_params()
        network = chicago_like(space=params.space)
        workload = NetworkWorkloadGenerator(network, params).generate(include_queries=False)
        for event in workload.update_events:
            assert event.new.speed <= params.max_speed + 1e-9
            assert event.new.speed >= 0.25 * params.max_speed - 1e-9


class TestQueryWorkload:
    def test_query_count_and_spread(self):
        params = tiny_params(num_queries=12)
        events = QueryWorkloadGenerator(params).generate()
        assert len(events) == 12
        times = [e.time for e in events]
        assert times == sorted(times)
        assert max(times) < params.time_duration

    def test_queries_use_predictive_time(self):
        params = tiny_params()
        generator = QueryWorkloadGenerator(params)
        query = generator.make_query(issue_time=10.0)
        assert query.end_time == pytest.approx(10.0 + params.query_predictive_time)
        assert query.is_time_slice

    def test_rectangular_mode(self):
        params = tiny_params(rectangular_queries=True, rectangle_side=900.0)
        query = QueryWorkloadGenerator(params).make_query(issue_time=0.0)
        rect = query.range.bounding_rect()
        assert rect.width == pytest.approx(900.0)
        assert rect.height == pytest.approx(900.0)

    def test_zero_queries(self):
        params = tiny_params(num_queries=0)
        assert QueryWorkloadGenerator(params).generate() == []


class TestBuildWorkload:
    def test_all_datasets_build(self):
        params = tiny_params(num_objects=60, num_queries=3)
        for dataset in DATASETS:
            workload = build_workload(dataset, params)
            assert workload.num_objects == 60
            assert len(workload.query_events) == 3

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError):
            build_workload("mars", tiny_params())

    def test_events_sorted(self):
        workload = build_workload("CH", tiny_params())
        times = [e.time for e in workload.sorted_events()]
        assert times == sorted(times)

    def test_velocity_sample_limit(self):
        workload = build_workload("SA", tiny_params())
        assert len(workload.velocity_sample(limit=10)) == 10

    def test_workload_properties(self):
        workload = Workload(
            name="x",
            space=tiny_params().space,
            initial_objects=[MovingObject(1, Point(0, 0), Vector(1, 1))],
        )
        assert workload.num_objects == 1
        assert workload.update_events == []
        assert workload.query_events == []


class TestGroupedEvents:
    def test_exact_grouping_preserves_flat_stream(self):
        workload = build_workload("SA", tiny_params(num_objects=80, num_queries=5))
        flattened = [e for batch in workload.grouped_events() for e in batch]
        assert flattened == workload.sorted_events()

    def test_windowed_grouping_preserves_flat_stream_and_type_runs(self):
        workload = build_workload("SA", tiny_params(num_objects=80, num_queries=5))
        batches = workload.grouped_events(window=1.0)
        flattened = [e for batch in batches for e in batch]
        assert flattened == workload.sorted_events()
        for batch in batches:
            # one type per batch, all events inside the same window bucket
            assert len({type(e) for e in batch}) == 1
            assert len({int(e.time // 1.0) for e in batch}) == 1

    def test_windowed_grouping_produces_real_batches(self):
        workload = build_workload("SA", tiny_params(num_objects=200, num_queries=0))
        exact = workload.grouped_events()
        windowed = workload.grouped_events(window=1.0)
        # continuous event times: exact grouping is ~all singletons, the
        # windowed grouping is what gives the batch pipeline real batches
        assert len(windowed) < len(exact)
        assert max(len(b) for b in windowed) > 1
