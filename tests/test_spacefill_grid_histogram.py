"""Tests for space-filling curves, the grid, and the velocity histogram."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bxtree.grid import Grid
from repro.bxtree.spacefill import HilbertCurve, ZCurve
from repro.bxtree.velocity_histogram import VelocityHistogram
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector


class TestCurvesCommon:
    @pytest.mark.parametrize("curve_cls", [HilbertCurve, ZCurve])
    def test_encode_decode_roundtrip_exhaustive_small(self, curve_cls):
        curve = curve_cls(order=3)
        seen = set()
        for cx in range(curve.cells_per_side):
            for cy in range(curve.cells_per_side):
                index = curve.encode(cx, cy)
                assert 0 <= index <= curve.max_index
                assert curve.decode(index) == (cx, cy)
                seen.add(index)
        assert len(seen) == curve.cells_per_side**2  # bijection

    @pytest.mark.parametrize("curve_cls", [HilbertCurve, ZCurve])
    def test_out_of_range_cell_raises(self, curve_cls):
        curve = curve_cls(order=2)
        with pytest.raises(ValueError):
            curve.encode(4, 0)
        with pytest.raises(ValueError):
            curve.decode(curve.max_index + 1)

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            HilbertCurve(0)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_hilbert_roundtrip_order8(self, cx, cy):
        curve = HilbertCurve(order=8)
        assert curve.decode(curve.encode(cx, cy)) == (cx, cy)

    def test_hilbert_consecutive_indexes_are_adjacent_cells(self):
        """The defining locality property of the Hilbert curve."""
        curve = HilbertCurve(order=4)
        for index in range(curve.max_index):
            x1, y1 = curve.decode(index)
            x2, y2 = curve.decode(index + 1)
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_ranges_for_cells_merges_consecutive(self):
        curve = HilbertCurve(order=3)
        cells = [curve.decode(i) for i in (4, 5, 6, 10, 12)]
        assert curve.ranges_for_cells(cells) == [(4, 6), (10, 10), (12, 12)]

    def test_ranges_for_cells_merge_gap(self):
        curve = HilbertCurve(order=3)
        cells = [curve.decode(i) for i in (4, 8, 20)]
        assert curve.ranges_for_cells(cells, merge_gap=4) == [(4, 8), (20, 20)]
        with pytest.raises(ValueError):
            curve.ranges_for_cells(cells, merge_gap=-1)


class TestGrid:
    def setup_method(self):
        self.grid = Grid(Rect(0.0, 0.0, 100.0, 50.0), cells_x=10, cells_y=5)

    def test_cell_dimensions(self):
        assert self.grid.cell_width == 10.0
        assert self.grid.cell_height == 10.0

    def test_cell_of_interior_point(self):
        assert self.grid.cell_of(Point(25.0, 15.0)) == (2, 1)

    def test_cell_of_clamps_outside_points(self):
        assert self.grid.cell_of(Point(-5.0, -5.0)) == (0, 0)
        assert self.grid.cell_of(Point(1000.0, 1000.0)) == (9, 4)

    def test_cell_rect_roundtrip(self):
        rect = self.grid.cell_rect(3, 2)
        assert self.grid.cell_of(rect.center) == (3, 2)

    def test_cell_rect_out_of_range(self):
        with pytest.raises(ValueError):
            self.grid.cell_rect(10, 0)

    def test_cells_overlapping(self):
        cells = list(self.grid.cells_overlapping(Rect(5.0, 5.0, 25.0, 15.0)))
        assert (0, 0) in cells and (2, 1) in cells
        assert len(cells) == self.grid.cell_count_overlapping(Rect(5.0, 5.0, 25.0, 15.0))

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            Grid(Rect(0, 0, 1, 1), 0, 5)


class TestVelocityHistogram:
    def setup_method(self):
        self.hist = VelocityHistogram(Grid(Rect(0, 0, 100, 100), 10, 10))

    def test_extrema_of_empty_histogram_are_zero(self):
        assert self.hist.extrema_in(Rect(0, 0, 100, 100)) == (0.0, 0.0, 0.0, 0.0)

    def test_add_updates_extrema(self):
        self.hist.add(Point(5, 5), Vector(10.0, -3.0))
        self.hist.add(Point(6, 6), Vector(-2.0, 7.0))
        assert self.hist.extrema_in(Rect(0, 0, 10, 10)) == (-2.0, -3.0, 10.0, 7.0)

    def test_extrema_respect_region(self):
        self.hist.add(Point(5, 5), Vector(50.0, 50.0))
        self.hist.add(Point(95, 95), Vector(-50.0, -50.0))
        min_vx, min_vy, max_vx, max_vy = self.hist.extrema_in(Rect(0, 0, 20, 20))
        # Only the slow-corner object is in the region, so the fast negative
        # velocities of the far corner must not leak into the extrema.
        assert (min_vx, min_vy, max_vx, max_vy) == (50.0, 50.0, 50.0, 50.0)

    def test_remove_decrements_count(self):
        self.hist.add(Point(5, 5), Vector(1.0, 1.0))
        self.hist.remove(Point(5, 5))
        assert self.hist.total_objects == 0

    def test_rebuild(self):
        self.hist.add(Point(5, 5), Vector(99.0, 99.0))
        self.hist.rebuild([(Point(50, 50), Vector(1.0, 2.0))])
        assert self.hist.total_objects == 1
        assert self.hist.global_extrema() == (1.0, 2.0, 1.0, 2.0)

    def test_global_extrema_covers_everything(self):
        self.hist.add(Point(1, 1), Vector(-5.0, 0.0))
        self.hist.add(Point(99, 99), Vector(8.0, -1.0))
        assert self.hist.global_extrema() == (-5.0, -1.0, 8.0, 0.0)


def _interleave_reference(value: int) -> int:
    """The original per-bit interleaving loop, kept as the ground truth."""
    result = 0
    bit = 0
    while value:
        result |= (value & 1) << (2 * bit)
        value >>= 1
        bit += 1
    return result


def _deinterleave_reference(value: int) -> int:
    """The original per-bit de-interleaving loop, kept as the ground truth."""
    result = 0
    bit = 0
    while value:
        result |= (value & 1) << bit
        value >>= 2
        bit += 1
    return result


class TestMagicNumberInterleave:
    """The constant-time bit spreading must match the old per-bit loops."""

    from repro.bxtree.spacefill import _deinterleave, _interleave

    _interleave = staticmethod(_interleave)
    _deinterleave = staticmethod(_deinterleave)

    @settings(max_examples=300, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 31) - 1))
    def test_interleave_matches_reference(self, value):
        assert self._interleave(value) == _interleave_reference(value)

    @settings(max_examples=300, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 62) - 1))
    def test_deinterleave_matches_reference(self, value):
        assert self._deinterleave(value) == _deinterleave_reference(value)

    def test_boundary_values(self):
        for value in (0, 1, 2, 3, (1 << 31) - 1, 1 << 30):
            assert self._interleave(value) == _interleave_reference(value)
            assert self._deinterleave(self._interleave(value)) == value

    @settings(max_examples=200, deadline=None)
    @given(
        st.integers(min_value=0, max_value=(1 << 31) - 1),
        st.integers(min_value=0, max_value=(1 << 31) - 1),
    )
    def test_zcurve_encode_matches_reference_composition(self, cx, cy):
        curve = ZCurve(order=31)
        assert curve.encode(cx, cy) == _interleave_reference(cx) | (
            _interleave_reference(cy) << 1
        )
