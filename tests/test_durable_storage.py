"""Durable storage layer: codec round-trips, FileDiskManager, injection.

Covers the crash-safe file-backed page store underneath the serving
layer's checkpoint/WAL protocol (``docs/storage.md``):

* the node codec's exact round-trips (bit-identical re-encoding);
* the ``DiskManager`` contract over a file (allocation, free-list reuse,
  pending pages, KeyError surface, header persistence across reopen);
* CRC verification — injected bit flips and torn pages surface as
  :class:`PageCorruptionError` (a ``PageReadError``, so the serving
  supervisor treats corruption as a transient fault);
* double-write torn-page recovery on reopen, for both torn-home and
  torn-DW crash windows;
* composition with the fault injector and the buffer manager (including
  the ``with`` form that flushes on exit).
"""

from array import array

import pytest

from repro.btree.bplus_tree import _InteriorNode, _LeafNode
from repro.geometry.moving_rect import MovingRect
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.objects.moving_object import MovingObject
from repro.storage import (
    BufferManager,
    DurabilityError,
    FaultInjectingDiskManager,
    FaultProfile,
    FileDiskManager,
    PageCorruptionError,
    PageOverflowError,
    PageReadError,
    inject_bit_flip,
    inject_torn_page,
)
from repro.storage.codec import decode_payload, encode_payload
from repro.tprtree.node import TPREntry, TPRNode

SLOT = 4096  # small slots keep the test files tiny


def _moving_object(oid: int) -> MovingObject:
    return MovingObject(
        oid=oid,
        position=Point(10.5 * oid, -3.25),
        velocity=Vector(1.5, -0.75),
        reference_time=float(oid),
    )


# ----------------------------------------------------------------------
# Codec round-trips
# ----------------------------------------------------------------------
def test_codec_leaf_round_trip_is_bit_identical():
    leaf = _LeafNode(
        page_id=7,
        keys=array("q", [3, 9, 27, 81]),
        values=[
            _moving_object(1),
            ("a", [1, 2.5, None], b"\x00\xff"),
            {"pickled": "fallback"},
            True,
        ],
        next_leaf=12,
    )
    blob = encode_payload(leaf)
    decoded = decode_payload(blob)
    assert decoded == leaf
    assert encode_payload(decoded) == blob


def test_codec_leaf_without_successor():
    leaf = _LeafNode(page_id=0, keys=array("q", [5]), values=[None], next_leaf=None)
    decoded = decode_payload(encode_payload(leaf))
    assert decoded == leaf
    assert decoded.next_leaf is None


def test_codec_interior_round_trip():
    node = _InteriorNode(
        page_id=3, keys=array("q", [100, 200]), children=[1, 2, 4]
    )
    blob = encode_payload(node)
    decoded = decode_payload(blob)
    assert decoded == node
    assert encode_payload(decoded) == blob


def test_codec_tpr_node_round_trip():
    node = TPRNode(page_id=9, is_leaf=True, parent_page_id=4)
    for oid in range(3):
        node.append_entry(
            TPREntry(
                bound=MovingRect.from_moving_point(
                    Point(1.0 + oid, 2.0 - oid), Vector(0.5, -0.25), 3.0
                ),
                oid=oid,
            )
        )
    blob = encode_payload(node)
    decoded = decode_payload(blob)
    assert decoded.page_id == 9
    assert decoded.is_leaf and decoded.parent_page_id == 4
    assert [e.oid for e in decoded.entries] == [0, 1, 2]
    assert [e.bound for e in decoded.entries] == [e.bound for e in node.entries]
    assert encode_payload(decoded) == blob


def test_codec_scalar_and_fallback_payloads():
    for payload in (None, {"arbitrary": [1, 2, 3]}, "just a string"):
        assert decode_payload(encode_payload(payload)) == payload


def test_codec_rejects_unknown_tags():
    with pytest.raises(ValueError, match="payload tag"):
        decode_payload(bytes([250]))


# ----------------------------------------------------------------------
# FileDiskManager: DiskManager contract
# ----------------------------------------------------------------------
def test_file_disk_allocate_write_read_round_trip(tmp_path):
    disk = FileDiskManager(str(tmp_path / "pages.db"), slot_bytes=SLOT, fsync=False)
    page = disk.allocate(_moving_object(1))
    # Pending page: allocated but never written — reads return the live
    # object, exactly like the in-memory manager.
    assert disk.read(page.page_id) is page
    page.mark_dirty()
    disk.write(page)
    assert not page.dirty
    assert page.write_backs == 1
    reread = disk.read(page.page_id)
    assert reread is not page
    assert reread.payload == _moving_object(1)
    assert disk.stats.physical.reads == 2
    assert disk.stats.physical.writes == 1
    assert page.page_id in disk
    assert len(disk) == 1
    disk.close()


def test_file_disk_missing_pages_raise_key_error(tmp_path):
    disk = FileDiskManager(str(tmp_path / "pages.db"), slot_bytes=SLOT, fsync=False)
    for call in (disk.read, disk.peek, disk.free):
        with pytest.raises(KeyError):
            call(99)
    from repro.storage.page import Page

    with pytest.raises(KeyError):
        disk.write(Page(page_id=99, payload="x"))
    disk.close()


def test_file_disk_free_list_reuse_is_lifo(tmp_path):
    disk = FileDiskManager(str(tmp_path / "pages.db"), slot_bytes=SLOT, fsync=False)
    pages = [disk.allocate(i) for i in range(4)]
    disk.free(pages[1].page_id)
    disk.free(pages[2].page_id)
    assert disk.allocate("a").page_id == pages[2].page_id
    assert disk.allocate("b").page_id == pages[1].page_id
    assert disk.allocate("c").page_id == 4
    assert disk.allocated_page_ids == [0, 1, 2, 3, 4]
    disk.close()


def test_file_disk_state_survives_reopen(tmp_path):
    path = str(tmp_path / "pages.db")
    disk = FileDiskManager(path, slot_bytes=SLOT, fsync=False)
    for i in range(3):
        page = disk.allocate(_moving_object(i))
        disk.write(page)
    disk.free(1)
    disk.close()

    reopened = FileDiskManager(path, slot_bytes=SLOT, fsync=False)
    assert reopened.allocated_page_ids == [0, 2]
    assert reopened.read(0).payload == _moving_object(0)
    assert reopened.read(2).payload == _moving_object(2)
    assert reopened.checksum_failures == 0
    # The freed id comes back before a fresh one is minted.
    assert reopened.allocate("x").page_id == 1
    reopened.close()


def test_file_disk_close_is_idempotent(tmp_path):
    disk = FileDiskManager(str(tmp_path / "pages.db"), slot_bytes=SLOT, fsync=False)
    disk.close()
    disk.close()


def test_file_disk_rejects_tiny_slots(tmp_path):
    with pytest.raises(ValueError, match="at least 256"):
        FileDiskManager(str(tmp_path / "pages.db"), slot_bytes=64)


def test_file_disk_overflowing_payload_raises(tmp_path):
    disk = FileDiskManager(str(tmp_path / "pages.db"), slot_bytes=256, fsync=False)
    page = disk.allocate(b"x" * 1024)
    with pytest.raises(PageOverflowError, match="slot_bytes"):
        disk.write(page)
    disk.close()


def test_file_disk_header_mismatches_refuse_to_open(tmp_path):
    path = str(tmp_path / "pages.db")
    FileDiskManager(path, slot_bytes=SLOT, fsync=False).close()
    with pytest.raises(DurabilityError, match="slots"):
        FileDiskManager(path, slot_bytes=2 * SLOT, fsync=False)

    garbage = str(tmp_path / "garbage.db")
    with open(garbage, "wb") as handle:
        handle.write(b"\x00" * SLOT * 2)
    with pytest.raises(DurabilityError, match="missing or corrupt"):
        FileDiskManager(garbage, slot_bytes=SLOT, fsync=False)


# ----------------------------------------------------------------------
# Checksums: injected corruption is detected on every read
# ----------------------------------------------------------------------
def test_bit_flip_fails_checksum_on_read_and_peek(tmp_path):
    path = str(tmp_path / "pages.db")
    disk = FileDiskManager(path, slot_bytes=SLOT, fsync=False)
    page = disk.allocate([1, 2, 3])
    disk.write(page)
    disk.close()

    inject_bit_flip(path, page.page_id, slot_bytes=SLOT, byte_offset=2, bit=5)
    reopened = FileDiskManager(path, slot_bytes=SLOT, fsync=False)
    with pytest.raises(PageCorruptionError):
        reopened.read(page.page_id)
    with pytest.raises(PageCorruptionError):
        reopened.peek(page.page_id)
    assert reopened.checksum_failures == 2
    # Corruption is a PageReadError: the serving supervisor retries it and
    # escalates to shard recovery without any storage-specific casing.
    assert issubclass(PageCorruptionError, PageReadError)
    reopened.close()


def test_torn_page_fails_checksum(tmp_path):
    path = str(tmp_path / "pages.db")
    disk = FileDiskManager(path, slot_bytes=SLOT, fsync=False)
    # The payload must span the tear point (half the slot) to be affected.
    page = disk.allocate(b"\xa5" * (SLOT * 3 // 4))
    disk.write(page)
    disk.close()

    inject_torn_page(path, page.page_id, slot_bytes=SLOT)
    reopened = FileDiskManager(path, slot_bytes=SLOT, fsync=False)
    with pytest.raises(PageCorruptionError):
        reopened.read(page.page_id)
    reopened.close()


# ----------------------------------------------------------------------
# Double-write protection: both torn-write windows recover on reopen
# ----------------------------------------------------------------------
class _CrashNow(Exception):
    pass


def _crash_at(event_name):
    """A crash hook aborting the process-under-test at ``event_name``."""
    state = {"armed": False}

    def hook(event):
        if state["armed"] and event == event_name:
            raise _CrashNow(event)

    return state, hook


def test_torn_home_write_is_redone_from_double_write_slot(tmp_path):
    path = str(tmp_path / "pages.db")
    state, hook = _crash_at("home:torn")
    disk = FileDiskManager(path, slot_bytes=SLOT, fsync=False, crash_hook=hook)
    page = disk.allocate("version-1")
    disk.write(page)
    disk.sync()  # allocation state durable before the simulated crash
    state["armed"] = True
    page.payload = "version-2"
    with pytest.raises(_CrashNow):
        disk.write(page)
    # Simulated kill: the manager is abandoned without close()/sync().

    reopened = FileDiskManager(path, slot_bytes=SLOT, fsync=False)
    # Home tore mid-write, but the DW slot held a complete copy: reopening
    # redoes the home write, so the *new* version survives.
    assert reopened.dw_recoveries == 1
    assert reopened.read(page.page_id).payload == "version-2"
    assert reopened.checksum_failures == 0
    reopened.close()


def test_torn_double_write_leaves_previous_version_intact(tmp_path):
    path = str(tmp_path / "pages.db")
    state, hook = _crash_at("dw:torn")
    disk = FileDiskManager(path, slot_bytes=SLOT, fsync=False, crash_hook=hook)
    page = disk.allocate("version-1")
    disk.write(page)
    disk.sync()
    state["armed"] = True
    page.payload = "version-2"
    with pytest.raises(_CrashNow):
        disk.write(page)

    reopened = FileDiskManager(path, slot_bytes=SLOT, fsync=False)
    # The DW copy tore before the home slot was touched: the torn DW frame
    # fails its CRC and is ignored, and the previous version still reads.
    assert reopened.dw_recoveries == 0
    assert reopened.read(page.page_id).payload == "version-1"
    assert reopened.checksum_failures == 0
    reopened.close()


# ----------------------------------------------------------------------
# Composition: fault injector and buffer manager over the file store
# ----------------------------------------------------------------------
def test_fault_injector_wraps_file_disk(tmp_path):
    inner = FileDiskManager(str(tmp_path / "pages.db"), slot_bytes=SLOT, fsync=False)
    disk = FaultInjectingDiskManager(
        inner=inner, profile=FaultProfile(fail_reads_at=frozenset({1}))
    )
    page = disk.allocate("payload")
    disk.write(page)
    assert disk.read(page.page_id).payload == "payload"  # read op 0
    with pytest.raises(PageReadError):
        disk.read(page.page_id)  # read op 1: injected, never hits the file
    assert disk.read(page.page_id).payload == "payload"
    assert inner.checksum_failures == 0
    inner.close()


def test_buffer_manager_context_manager_flushes_on_exit(tmp_path):
    path = str(tmp_path / "pages.db")
    disk = FileDiskManager(path, slot_bytes=SLOT, fsync=False)
    with BufferManager(disk=disk, capacity=4) as buffer:
        page = buffer.new_page("durable-me")
        page.mark_dirty()
        page_id = page.page_id
    disk.sync()
    disk.close()
    reopened = FileDiskManager(path, slot_bytes=SLOT, fsync=False)
    assert reopened.read(page_id).payload == "durable-me"
    reopened.close()


def test_buffer_manager_context_manager_flushes_on_exception(tmp_path):
    path = str(tmp_path / "pages.db")
    disk = FileDiskManager(path, slot_bytes=SLOT, fsync=False)
    with pytest.raises(RuntimeError, match="boom"):
        with BufferManager(disk=disk, capacity=4) as buffer:
            page = buffer.new_page("still-flushed")
            page.mark_dirty()
            page_id = page.page_id
            raise RuntimeError("boom")
    disk.close()
    reopened = FileDiskManager(path, slot_bytes=SLOT, fsync=False)
    assert reopened.read(page_id).payload == "still-flushed"
    reopened.close()
