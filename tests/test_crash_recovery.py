"""Crash recovery: checkpoint/WAL reopen equals the never-crashed twin.

Two tiers (see ``docs/storage.md`` for the recovery state machine):

* in-process tests simulate a crash by abandoning a durable
  :class:`~repro.serve.DurableStore` without closing it, then reopen and
  pin bit-identical range/kNN answers plus bounded WAL-tail replay;
* subprocess tests (marked slow) land a real ``SIGKILL`` inside a chosen
  torn-write window — mid double-write, after the DW fsync but before
  the home write, and mid WAL append — via the storage crash hooks, then
  recover in the parent and compare against a clean twin.
"""

import os
import signal
import subprocess
import sys

import pytest

import crash_child
import repro
from repro.serve.durable_store import DurableStore
from repro.storage import FaultProfile, fault_wrap
from repro.storage.durable import FileDiskManager


def _twin_with_history(objects, updates):
    """A never-crashed in-memory reference with the same history applied."""
    twin = crash_child.build_twin()
    twin.bulk_load(objects)
    for old, new in updates:
        twin.update(old, new)
    return twin


def _assert_pages_checksum_clean(index):
    """Directly re-read every allocated page of every durable shard."""
    for shard in index.shards:
        disk = shard.buffer.disk
        assert isinstance(disk, FileDiskManager)
        for page_id in disk.allocated_page_ids:
            disk.read(page_id)  # PageCorruptionError would fail the test
        assert disk.checksum_failures == 0


# ----------------------------------------------------------------------
# In-process: clean shutdown, simulated crash, explicit checkpoint
# ----------------------------------------------------------------------
def test_clean_close_reopen_replays_nothing(tmp_path):
    root = str(tmp_path / "store")
    objects = crash_child.make_objects()
    updates = crash_child.make_updates(objects)

    index = DurableStore(root, fsync=False).create(
        crash_child.make_shard,
        num_shards=crash_child.NUM_SHARDS,
        space=crash_child.SPACE,
        buffer_pages=crash_child.BUFFER_PAGES,
        max_workers=1,
    )
    index.bulk_load(objects)
    for old, new in updates:
        index.update(old, new)
    live = crash_child.answers(index)
    index.close()

    store = DurableStore(root, fsync=False)
    reopened = store.open(max_workers=1)
    # close() checkpointed every shard: nothing is left to replay.
    assert store.replayed_on_open == [0] * crash_child.NUM_SHARDS
    assert crash_child.answers(reopened) == live
    assert crash_child.answers(reopened) == crash_child.answers(
        _twin_with_history(objects, updates)
    )
    _assert_pages_checksum_clean(reopened)
    reopened.close()


def test_abandoned_store_reopen_replays_bounded_tail(tmp_path):
    root = str(tmp_path / "store")
    objects = crash_child.make_objects()
    updates = crash_child.make_updates(objects)

    index = DurableStore(root, fsync=False).create(
        crash_child.make_shard,
        num_shards=crash_child.NUM_SHARDS,
        space=crash_child.SPACE,
        buffer_pages=crash_child.BUFFER_PAGES,
        max_workers=1,
    )
    index.bulk_load(objects)
    index.checkpoint()
    for old, new in updates:
        index.update(old, new)
    live = crash_child.answers(index)
    # Simulated crash: the process state is simply abandoned — dirty
    # buffer pages never reach pages.db, no checkpoint, no close.

    store = DurableStore(root, fsync=False)
    recovered = store.open(max_workers=1)
    # Bounded replay: the checkpoint truncated the bulk-load history, so
    # each shard replays exactly its post-checkpoint updates and nothing
    # else.
    assert sum(store.replayed_on_open) == len(updates)
    for shard_id in range(crash_child.NUM_SHARDS):
        ops = [op for op, _ in recovered.shard_log(shard_id).records]
        assert "bulk_load" not in ops
    assert crash_child.answers(recovered) == live
    _assert_pages_checksum_clean(recovered)
    recovered.close()


def test_explicit_checkpoint_truncates_wals(tmp_path):
    root = str(tmp_path / "store")
    objects = crash_child.make_objects()
    updates = crash_child.make_updates(objects)

    index = DurableStore(root, fsync=False).create(
        crash_child.make_shard,
        num_shards=crash_child.NUM_SHARDS,
        space=crash_child.SPACE,
        buffer_pages=crash_child.BUFFER_PAGES,
        max_workers=1,
    )
    index.bulk_load(objects)
    for old, new in updates:
        index.update(old, new)
    assert sum(len(index.shard_log(s)) for s in range(crash_child.NUM_SHARDS)) > 0
    live = crash_child.answers(index)

    index.checkpoint()
    for shard_id in range(crash_child.NUM_SHARDS):
        assert len(index.shard_log(shard_id)) == 0
        wal = index.shard_log(shard_id).path
        assert wal is not None and os.path.getsize(wal) == 0
    # Abandon post-checkpoint: recovery now replays nothing at all.
    store = DurableStore(root, fsync=False)
    recovered = store.open(max_workers=1)
    assert store.replayed_on_open == [0] * crash_child.NUM_SHARDS
    assert crash_child.answers(recovered) == live
    recovered.close()


def test_supervised_recovery_restores_durable_shard_from_store(tmp_path):
    """An injected mid-batch kill on a durable shard recovers through its
    store (checkpoint image + WAL replay), not a factory rebuild."""
    root = str(tmp_path / "store")
    objects = crash_child.make_objects()
    updates = crash_child.make_updates(objects)

    index = DurableStore(root, fsync=False).create(
        crash_child.make_shard,
        num_shards=crash_child.NUM_SHARDS,
        space=crash_child.SPACE,
        buffer_pages=crash_child.BUFFER_PAGES,
        max_workers=1,
    )
    index.bulk_load(objects)
    index.checkpoint()
    # Kill shard 0's storage a few physical ops into the update storm.
    fault_wrap(index.shards[0].buffer, FaultProfile(kill_at_op=5))
    for old, new in updates:
        index.update(old, new)
    assert len(index.recovery_events) >= 1
    event = index.recovery_events[0]
    assert event["shard_id"] == 0
    assert event["replayed_records"] > 0
    assert event["compacted"]
    live = crash_child.answers(index)
    assert crash_child.answers(_twin_with_history(objects, updates)) == live
    index.close()

    store = DurableStore(root, fsync=False)
    recovered = store.open(max_workers=1)
    assert crash_child.answers(recovered) == live
    recovered.close()


# ----------------------------------------------------------------------
# Subprocess: a real SIGKILL inside each torn-write window
# ----------------------------------------------------------------------
def _run_child(root, kill_event, kill_ordinal):
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, os.path.join(os.path.dirname(__file__), "crash_child.py"),
         root, kill_event, str(kill_ordinal)],
        env=env,
        capture_output=True,
        timeout=300,
    )


@pytest.mark.slow
@pytest.mark.parametrize(
    "kill_event,kill_ordinal",
    [
        ("dw:torn", 3),  # mid double-write-slot write
        ("dw:synced", 3),  # DW durable, home slot not yet written
        ("home:torn", 3),  # mid home-slot write (DW protects it)
        ("wal:torn", 4),  # mid WAL append (record never executed)
    ],
)
def test_sigkill_recovery_matches_clean_twin(tmp_path, kill_event, kill_ordinal):
    root = str(tmp_path / "store")
    result = _run_child(root, kill_event, kill_ordinal)
    assert result.returncode == -signal.SIGKILL, (
        f"child exited {result.returncode}: {result.stderr.decode()[-2000:]}"
    )

    store = DurableStore(root)
    recovered = store.open(max_workers=1)
    # Bounded replay: only post-checkpoint updates live in the tails —
    # never the bulk load the checkpoint folded away.
    assert sum(store.replayed_on_open) <= crash_child.NUM_UPDATES
    replayed_pairs = []
    for shard_id in range(crash_child.NUM_SHARDS):
        records = recovered.shard_log(shard_id).records
        assert all(op == "update" for op, _ in records)
        replayed_pairs.extend(payload for _, payload in records)
    _assert_pages_checksum_clean(recovered)

    # The clean twin applies exactly the updates whose WAL append
    # completed: a mutation is acknowledged only after its log record is
    # durable, so the recovered index must answer as if precisely those
    # updates happened.
    objects = crash_child.make_objects()
    updates = crash_child.make_updates(objects)
    durable_set = {(old.oid, new.reference_time) for old, new in replayed_pairs}
    twin = crash_child.build_twin()
    twin.bulk_load(objects)
    applied = 0
    for old, new in updates:
        if (old.oid, new.reference_time) in durable_set:
            twin.update(old, new)
            applied += 1
    assert applied == len(replayed_pairs)
    assert crash_child.answers(recovered) == crash_child.answers(twin)
    recovered.close()
