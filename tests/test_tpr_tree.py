"""Tests for the TPR-tree and TPR*-tree."""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.objects.moving_object import MovingObject
from repro.objects.queries import RectangularRange, TimeSliceRangeQuery
from repro.geometry.rect import Rect
from repro.storage.buffer_manager import BufferManager
from repro.tprtree.node import TPREntry, TPRNode
from repro.tprtree.tpr_tree import TPRTree
from repro.tprtree.tprstar_tree import TPRStarTree

from tests.conftest import brute_force_range, make_circular_query, make_objects


def small_tree(cls=TPRStarTree, **kwargs) -> TPRTree:
    kwargs.setdefault("max_entries", 8)
    kwargs.setdefault("buffer", BufferManager(capacity=128))
    return cls(**kwargs)


class TestNode:
    def test_entry_must_reference_exactly_one_target(self):
        bound = MovingObject(1, Point(0, 0), Vector(0, 0)).as_moving_rect()
        with pytest.raises(ValueError):
            TPREntry(bound=bound)
        with pytest.raises(ValueError):
            TPREntry(bound=bound, child_page_id=1, oid=2)

    def test_node_bound_requires_entries(self):
        node = TPRNode(page_id=0, is_leaf=True)
        with pytest.raises(ValueError):
            node.bound(0.0)

    def test_find_and_remove_child_entry(self):
        bound = MovingObject(1, Point(0, 0), Vector(0, 0)).as_moving_rect()
        node = TPRNode(page_id=0, is_leaf=False)
        node.entries.append(TPREntry(bound=bound, child_page_id=7))
        assert node.find_entry_for_child(7).child_page_id == 7
        node.remove_entry_for_child(7)
        assert node.num_entries == 0
        with pytest.raises(KeyError):
            node.find_entry_for_child(7)


class TestInsertDelete:
    @pytest.mark.parametrize("cls", [TPRTree, TPRStarTree])
    def test_insert_then_delete_all(self, cls):
        tree = small_tree(cls)
        objects = make_objects(60, seed=11)
        for obj in objects:
            tree.insert(obj)
        assert len(tree) == 60
        assert tree.height >= 2
        for obj in objects:
            assert tree.delete(obj), f"failed to delete {obj.oid}"
        assert len(tree) == 0

    def test_delete_missing_returns_false(self):
        tree = small_tree()
        objects = make_objects(10)
        for obj in objects:
            tree.insert(obj)
        ghost = MovingObject(999, Point(1.0, 1.0), Vector(0.0, 0.0))
        assert not tree.delete(ghost)

    def test_update_moves_object(self):
        tree = small_tree()
        obj = MovingObject(1, Point(100.0, 100.0), Vector(1.0, 0.0), 0.0)
        tree.insert(obj)
        moved = obj.with_update(Point(5000.0, 5000.0), Vector(0.0, 2.0), 10.0)
        assert tree.update(obj, moved)
        query = make_circular_query(Point(5000.0, 5020.0), 50.0, time=20.0, issue_time=10.0)
        assert tree.range_query(query) == [1]

    def test_size_constraints_enforced(self):
        with pytest.raises(ValueError):
            TPRTree(max_entries=2)
        with pytest.raises(ValueError):
            TPRTree(min_fill=0.9)

    def test_page_size_controls_fanout(self):
        tree = TPRTree(page_size=1024)
        assert tree.max_entries == (1024 - 32) // 80

    def test_all_objects_iterable(self):
        tree = small_tree()
        objects = make_objects(25, seed=2)
        for obj in objects:
            tree.insert(obj)
        stored = {oid for oid, _ in tree.iter_objects()}
        assert stored == {obj.oid for obj in objects}


class TestBoundInvariants:
    @pytest.mark.parametrize("cls", [TPRTree, TPRStarTree])
    def test_parent_bounds_contain_objects_at_future_times(self, cls):
        tree = small_tree(cls)
        objects = make_objects(80, seed=21, axis_aligned=True)
        for obj in objects:
            tree.insert(obj)
        for future in (tree.current_time, tree.current_time + 30.0, tree.current_time + 90.0):
            leaf_rects = [b.rect_at(future) for b in tree.iter_leaf_bounds()]
            for obj in objects:
                position = obj.position_at(future)
                assert any(
                    rect.enlarged(1e-6, 1e-6).contains_point(position) for rect in leaf_rects
                ), f"object {obj.oid} escaped every leaf bound at t={future}"

    def test_bounds_remain_valid_after_updates(self, rng):
        tree = small_tree()
        objects = {obj.oid: obj for obj in make_objects(40, seed=31)}
        for obj in objects.values():
            tree.insert(obj)
        for step in range(1, 6):
            time = step * 10.0
            for oid in rng.sample(sorted(objects), 10):
                old = objects[oid]
                new = MovingObject(
                    oid,
                    old.position_at(time),
                    Vector(rng.uniform(-40, 40), rng.uniform(-40, 40)),
                    time,
                )
                tree.update(old, new)
                objects[oid] = new
        future = tree.current_time + 20.0
        leaf_rects = [b.rect_at(future) for b in tree.iter_leaf_bounds()]
        for obj in objects.values():
            position = obj.position_at(future)
            assert any(r.enlarged(1e-6, 1e-6).contains_point(position) for r in leaf_rects)


class TestRangeQueries:
    @pytest.mark.parametrize("cls", [TPRTree, TPRStarTree])
    def test_matches_brute_force_circular(self, cls):
        tree = small_tree(cls)
        objects = make_objects(120, seed=41)
        for obj in objects:
            tree.insert(obj)
        rng = random.Random(7)
        for _ in range(15):
            center = Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
            query = make_circular_query(center, 1200.0, time=rng.uniform(0, 40))
            assert set(tree.range_query(query)) == brute_force_range(objects, query)

    def test_matches_brute_force_rectangular(self):
        tree = small_tree()
        objects = make_objects(100, seed=43)
        for obj in objects:
            tree.insert(obj)
        rng = random.Random(17)
        for _ in range(10):
            x = rng.uniform(0, 9_000)
            y = rng.uniform(0, 9_000)
            query = TimeSliceRangeQuery(
                RectangularRange(Rect(x, y, x + 1500, y + 1500)), time=rng.uniform(0, 30)
            )
            assert set(tree.range_query(query)) == brute_force_range(objects, query)

    def test_inexact_query_is_superset(self):
        tree = small_tree()
        objects = make_objects(80, seed=47)
        for obj in objects:
            tree.insert(obj)
        query = make_circular_query(Point(5000, 5000), 2000.0, time=20.0)
        exact = set(tree.range_query(query, exact=True))
        candidates = set(tree.range_query(query, exact=False))
        assert exact <= candidates

    def test_query_on_empty_tree(self):
        tree = small_tree()
        query = make_circular_query(Point(0, 0), 100.0, time=1.0)
        assert tree.range_query(query) == []


class TestStructuralIntegrityUnderChurn:
    """Regression test: deep trees under heavy update churn must never lose
    objects.  An earlier bug re-attached orphaned subtrees at the wrong level
    during pick-worst reinsertion, silently dropping whole leaves."""

    @pytest.mark.parametrize("cls", [TPRTree, TPRStarTree])
    def test_no_object_lost_after_many_updates(self, cls):
        rng = random.Random(2024)
        tree = small_tree(cls, max_entries=6)
        objects = {o.oid: o for o in make_objects(300, seed=61, axis_aligned=True)}
        for obj in objects.values():
            tree.insert(obj)
        assert tree.height >= 3
        for step in range(1, 9):
            time = step * 5.0
            for oid in rng.sample(sorted(objects), 120):
                old = objects[oid]
                new = MovingObject(
                    oid,
                    old.position_at(time),
                    Vector(rng.uniform(-40, 40), rng.uniform(-40, 40)),
                    time,
                )
                assert tree.update(old, new), f"lost object {oid} at step {step}"
                objects[oid] = new
        stored = [oid for oid, _ in tree.iter_objects()]
        assert len(stored) == 300
        assert len(set(stored)) == 300
        assert len(tree) == 300


class TestTPRStarSpecifics:
    def test_star_tree_groups_by_direction_better(self):
        """On direction-skewed data the TPR*-tree should produce leaves whose
        velocity extent is smaller than the plain TPR-tree's (its cost model
        penalizes grouping objects that move apart)."""
        objects = make_objects(150, seed=53, axis_aligned=True)

        def mean_expansion(tree):
            rates = [
                b.expansion_rate_x + b.expansion_rate_y for b in tree.iter_leaf_bounds()
            ]
            return sum(rates) / len(rates)

        plain = small_tree(TPRTree)
        star = small_tree(TPRStarTree)
        for obj in objects:
            plain.insert(obj)
            star.insert(obj)
        assert mean_expansion(star) <= mean_expansion(plain) * 1.1

    def test_reinsertion_happens_once_per_level(self):
        tree = small_tree(TPRStarTree)
        for obj in make_objects(30, seed=59):
            tree.insert(obj)
        # After enough inserts to overflow, the tree is still consistent.
        assert len(tree) == 30
        assert {oid for oid, _ in tree.iter_objects()} == set(range(30))


class TestBatchSurface:
    def test_delete_batch_flags_align_with_input_even_for_duplicates(self):
        tree = TPRTree(buffer=BufferManager(capacity=64))
        objects = [
            MovingObject(i, Point(i * 50.0, i * 50.0), Vector(1.0, 1.0), 0.0)
            for i in range(20)
        ]
        for obj in objects:
            tree.insert(obj)
        target = objects[3]
        flags = tree.delete_batch([target, target] + objects[5:8])
        # The duplicate deletion succeeds exactly once; flags stay aligned
        # with the input order (first attempt wins, second finds nothing).
        assert sum(flags[:2]) == 1
        assert flags[2:] == [True, True, True]
        assert len(tree) == 16

    def test_update_batch_matches_sequential_object_set(self):
        def build():
            t = TPRStarTree(buffer=BufferManager(capacity=64))
            for i in range(40):
                t.insert(
                    MovingObject(i, Point(i * 20.0, 1000.0 - i * 20.0), Vector(2.0, -1.0), 0.0)
                )
            return t

        pairs = [
            (
                MovingObject(i, Point(i * 20.0, 1000.0 - i * 20.0), Vector(2.0, -1.0), 0.0),
                MovingObject(i, Point(i * 20.0 + 30.0, 1000.0 - i * 20.0), Vector(-1.0, 3.0), 15.0),
            )
            for i in range(0, 40, 2)
        ]
        sequential, batched = build(), build()
        removed_seq = sum(1 for old, new in pairs if sequential.update(old, new))
        removed_bat = batched.update_batch(pairs)
        assert removed_seq == removed_bat == len(pairs)
        assert sorted(oid for oid, _ in sequential.iter_objects()) == sorted(
            oid for oid, _ in batched.iter_objects()
        )


class TestColumnarIterator:
    def test_iter_records_matches_entries_view(self):
        rng = random.Random(31)
        node = TPRNode(page_id=0, is_leaf=True)
        for oid in range(10):
            obj = MovingObject(
                oid,
                Point(rng.uniform(0, 100), rng.uniform(0, 100)),
                Vector(rng.uniform(-5, 5), rng.uniform(-5, 5)),
                reference_time=rng.uniform(0, 10),
            )
            node.entries.append(TPREntry(bound=obj.as_moving_rect(), oid=oid))
        records = list(node.iter_records())
        assert len(records) == node.num_entries
        for record, entry in zip(records, node.entries):
            ref, x0, y0, x1, y1, vx0, vy0, vx1, vy1, tref = record
            assert ref == entry.oid
            assert (x0, y0, x1, y1) == (
                entry.bound.rect.x_min,
                entry.bound.rect.y_min,
                entry.bound.rect.x_max,
                entry.bound.rect.y_max,
            )
            assert (vx0, vy0, vx1, vy1) == (
                entry.bound.v_x_min,
                entry.bound.v_y_min,
                entry.bound.v_x_max,
                entry.bound.v_y_max,
            )
            assert tref == entry.bound.reference_time

    def test_iter_objects_yields_exact_stored_bounds(self):
        tree = TPRTree(buffer=BufferManager(capacity=64), max_entries=4)
        objects = [
            MovingObject(
                oid,
                Point(oid * 10.0, oid * 5.0),
                Vector(oid * 0.5, -oid * 0.25),
                reference_time=0.5 * oid,
            )
            for oid in range(30)
        ]
        for obj in objects:
            tree.insert(obj)
        dumped = dict(tree.iter_objects())
        assert sorted(dumped) == list(range(30))
        for obj in objects:
            assert dumped[obj.oid] == obj.as_moving_rect()


class TestVectorizedTraversal:
    def test_vector_and_scalar_shared_search_agree(self, monkeypatch):
        """Forcing the numpy pass on or off must not change any batch answer."""
        import repro.tprtree.tpr_tree as tpr_module

        rng = random.Random(17)
        objects = [
            MovingObject(
                oid,
                Point(rng.uniform(0, 1000), rng.uniform(0, 1000)),
                Vector(rng.uniform(-10, 10), rng.uniform(-10, 10)),
            )
            for oid in range(300)
        ]
        queries = [
            TimeSliceRangeQuery(
                RectangularRange(
                    Rect(x, y, x + rng.uniform(50, 300), y + rng.uniform(50, 300))
                ),
                time=rng.uniform(0.0, 20.0),
            )
            for x, y in (
                (rng.uniform(0, 800), rng.uniform(0, 800)) for _ in range(12)
            )
        ]

        def answers(min_work):
            monkeypatch.setattr(tpr_module, "VECTOR_MATCH_MIN_WORK", min_work)
            tree = TPRTree(buffer=BufferManager(capacity=64), max_entries=8)
            for obj in objects:
                tree.insert(obj)
            return tree.range_query_batch(queries)

        always_vector = answers(0)
        never_vector = answers(10**9)
        assert always_vector == never_vector
        assert any(always_vector), "queries must actually return candidates"
