"""Tests for the τ threshold optimization and the velocity analyzer."""

import math
import random

import pytest

from repro.core.outlier import (
    expansion_rate_objective,
    optimal_tau,
    total_expansion_rate,
)
from repro.core.velocity_analyzer import VelocityAnalyzer, VelocityPartitioning
from repro.core.dva import DominantVelocityAxis
from repro.geometry.vector import Vector

from tests.test_pca_kmeans import axis_sample


class TestObjective:
    def test_equation_10_shape(self):
        # Keeping everything (v_yd = v_ymax) gives 0; keeping fewer objects with
        # a smaller v_yd gives a negative (better) value.
        assert expansion_rate_objective(100, 10.0, 10.0) == 0.0
        assert expansion_rate_objective(90, 2.0, 10.0) < 0.0

    def test_equation_9_is_monotone_in_equation_10(self):
        """For fixed t, a smaller Equation-10 value gives a smaller Equation 9."""
        constants = dict(t=30.0, n_total=1000, n_per_leaf=20.0, d=100.0, v_xmax=50.0, v_ymax=40.0)
        candidates = [(900, 5.0), (800, 10.0), (995, 39.0), (400, 1.0)]
        objective = [expansion_rate_objective(n, v, constants["v_ymax"]) for n, v in candidates]
        full_rate = [
            total_expansion_rate(n_d=n, v_yd=v, **constants) for n, v in candidates
        ]
        ranked_by_objective = sorted(range(len(candidates)), key=lambda i: objective[i])
        ranked_by_rate = sorted(range(len(candidates)), key=lambda i: full_rate[i])
        assert ranked_by_objective == ranked_by_rate


class TestOptimalTau:
    def test_empty_partition_raises(self):
        with pytest.raises(ValueError):
            optimal_tau([])

    def test_all_on_axis_gives_zero_tau(self):
        result = optimal_tau([0.0] * 50)
        assert result.tau == 0.0

    def test_outliers_are_cut(self):
        """90% of objects have tiny perpendicular speed, 10% are fast outliers:
        τ should land between the two groups."""
        speeds = [0.5] * 900 + [80.0] * 100
        result = optimal_tau(speeds)
        assert 0.5 <= result.tau < 80.0

    def test_uniform_speeds_keep_about_half(self):
        """For a uniform perpendicular-speed distribution Equation 10 is
        minimized at τ ≈ v_max / 2 (n_d(τ) ∝ τ, so the objective is a parabola
        with its minimum at the midpoint): about half the objects stay."""
        rng = random.Random(3)
        speeds = [rng.uniform(0.0, 50.0) for _ in range(2000)]
        result = optimal_tau(speeds)
        kept = sum(1 for s in speeds if s <= result.tau)
        assert 0.4 < kept / len(speeds) < 0.6
        assert result.tau == pytest.approx(25.0, rel=0.1)

    def test_tau_minimizes_objective_over_candidates(self):
        rng = random.Random(4)
        speeds = [abs(rng.gauss(0, 3)) for _ in range(500)] + [60.0 + rng.random() for _ in range(40)]
        result = optimal_tau(speeds)
        best = min(value for _, value in result.candidates)
        assert result.objective == pytest.approx(best)

    def test_histogram_resolution_changes_granularity(self):
        speeds = [1.0] * 80 + [30.0] * 20
        coarse = optimal_tau(speeds, histogram_buckets=3)
        fine = optimal_tau(speeds, histogram_buckets=300)
        assert coarse.tau >= fine.tau > 0.0


class TestVelocityAnalyzer:
    def test_analyze_two_axis_sample(self):
        velocities = axis_sample([0.0, 90.0], points_per_axis=400, noise=1.0, seed=11)
        partitioning = VelocityAnalyzer(k=2).analyze(velocities)
        assert partitioning.k == 2
        angles = sorted(math.degrees(d.axis.angle) % 180.0 for d in partitioning.dvas)
        assert min(abs(angles[0] - 0.0), abs(angles[0] - 180.0)) < 5.0
        assert abs(angles[1] - 90.0) < 5.0
        assert partitioning.analysis_time_seconds > 0.0

    def test_partition_for_routes_by_direction(self):
        velocities = axis_sample([0.0, 90.0], points_per_axis=400, noise=1.0, seed=12)
        partitioning = VelocityAnalyzer(k=2).analyze(velocities)
        along_x = partitioning.partition_for(Vector(50.0, 0.3))
        along_y = partitioning.partition_for(Vector(0.3, 50.0))
        assert along_x is not None and along_y is not None
        assert along_x != along_y

    def test_far_velocity_goes_to_outlier(self):
        velocities = axis_sample([0.0, 90.0], points_per_axis=400, noise=0.5, seed=13)
        partitioning = VelocityAnalyzer(k=2).analyze(velocities)
        assert partitioning.partition_for(Vector(40.0, 40.0)) is None

    def test_outliers_shrink_tau_relative_to_max(self):
        velocities = axis_sample([0.0], points_per_axis=500, noise=1.0, seed=14)
        # Add blatant outliers moving diagonally.
        velocities += [Vector(30.0, 30.0) for _ in range(25)]
        partitioning = VelocityAnalyzer(k=1).analyze(velocities)
        max_perp = max(
            v.perpendicular_distance_to_axis(partitioning.dvas[0].axis) for v in velocities
        )
        assert partitioning.dvas[0].tau < max_perp

    def test_sample_size_subsampling(self):
        velocities = axis_sample([0.0, 90.0], points_per_axis=300, seed=15)
        analyzer = VelocityAnalyzer(k=2, sample_size=100)
        partitioning = analyzer.analyze(velocities)
        assert partitioning.k == 2

    def test_too_small_sample_raises(self):
        with pytest.raises(ValueError):
            VelocityAnalyzer(k=2).analyze([Vector(1.0, 0.0)])

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            VelocityAnalyzer(k=0)

    def test_partitioning_with_manual_taus(self):
        partitioning = VelocityPartitioning(
            dvas=[
                DominantVelocityAxis(axis=Vector(1.0, 0.0), tau=1.0),
                DominantVelocityAxis(axis=Vector(0.0, 1.0), tau=1.0),
            ]
        )
        assert partitioning.partition_for(Vector(10.0, 0.5)) == 0
        assert partitioning.partition_for(Vector(0.5, 10.0)) == 1
        assert partitioning.partition_for(Vector(5.0, 5.0)) is None
