"""Tests for the expansion analysis, the experiment harness, and reporting."""

import pytest

from repro.analysis.expansion import (
    ExpansionSample,
    expansion_anisotropy,
    leaf_mbr_expansion_rates,
    mean_across_rate,
    mean_along_rate,
    query_expansion_rates,
)
from repro.bench.harness import (
    ExperimentRunner,
    IndexMetrics,
    build_standard_indexes,
    run_comparison,
)
from repro.bench.reporting import format_table, rows_to_csv
from repro.bxtree.bx_tree import BxTree
from repro.storage.buffer_manager import BufferManager
from repro.tprtree.tprstar_tree import TPRStarTree
from repro.workload.generator import build_workload

from tests.conftest import SMALL_SPACE, make_circular_query, make_objects
from repro.geometry.point import Point


class TestExpansionSamples:
    def test_anisotropy_of_sample(self):
        assert ExpansionSample(along=10.0, across=2.0).anisotropy == pytest.approx(5.0)
        assert ExpansionSample(along=0.0, across=0.0).anisotropy == 1.0
        assert ExpansionSample(along=5.0, across=0.0).anisotropy == float("inf")

    def test_mean_rates(self):
        samples = [ExpansionSample(4.0, 1.0), ExpansionSample(6.0, 3.0)]
        assert mean_along_rate(samples) == pytest.approx(5.0)
        assert mean_across_rate(samples) == pytest.approx(2.0)
        assert mean_along_rate([]) is None
        assert expansion_anisotropy([]) is None

    def test_leaf_rates_reflect_velocity_mix(self):
        """Axis-aligned objects produce leaves whose expansion is anisotropic
        after the TPR*-tree groups them by direction; random-direction objects
        produce roughly isotropic leaves."""
        skewed_tree = TPRStarTree(buffer=BufferManager(capacity=64), max_entries=8)
        for obj in make_objects(120, axis_aligned=True, seed=1):
            skewed_tree.insert(obj)
        samples = leaf_mbr_expansion_rates(skewed_tree, label="skewed")
        assert len(samples) > 5
        assert all(s.label == "skewed" for s in samples)

    def test_query_rates_from_bx_tree(self):
        tree = BxTree(
            buffer=BufferManager(capacity=64),
            space=SMALL_SPACE,
            curve_order=6,
            max_update_interval=40.0,
            page_size=512,
        )
        for obj in make_objects(150, seed=2, max_speed=40.0):
            tree.insert(obj)
        queries = [
            make_circular_query(Point(3000, 3000), 500.0, time=30.0),
            make_circular_query(Point(7000, 7000), 500.0, time=35.0),
        ]
        samples = query_expansion_rates(tree, queries, label="Bx")
        assert samples
        # Random-direction data: enlargement happens on both axes.
        assert mean_along_rate(samples) > 0.0
        assert mean_across_rate(samples) > 0.0


class TestIndexMetrics:
    def test_averages(self):
        metrics = IndexMetrics(index_name="X", num_queries=4, num_updates=2)
        metrics.query_io_total = 20
        metrics.update_io_total = 6
        metrics.query_time_total = 0.4
        metrics.update_time_total = 0.1
        assert metrics.avg_query_io == 5.0
        assert metrics.avg_update_io == 3.0
        assert metrics.avg_query_time_ms == pytest.approx(100.0)
        assert metrics.avg_update_time_ms == pytest.approx(50.0)

    def test_zero_division_safe(self):
        metrics = IndexMetrics(index_name="X")
        assert metrics.avg_query_io == 0.0
        assert metrics.avg_update_time_ms == 0.0

    def test_as_row_contains_key_columns(self):
        row = IndexMetrics(index_name="X", dataset="CH").as_row()
        for column in ("index", "dataset", "query_io", "update_io"):
            assert column in row


class TestHarness:
    def test_run_comparison_small_workload(self, small_params):
        workload = build_workload("CH", small_params)
        results = run_comparison(workload, small_params)
        names = {m.index_name for m in results}
        assert names == {"Bx", "Bx(VP)", "TPR*", "TPR*(VP)"}
        by_name = {m.index_name: m for m in results}
        # Every index must answer every query identically (same result count).
        counts = {m.results_returned for m in results}
        assert len(counts) == 1
        for metrics in results:
            assert metrics.num_queries == small_params.num_queries
            assert metrics.num_updates == len(workload.update_events)
            assert metrics.query_node_accesses > 0
        # VP variants keep the same buffer budget as their base index.
        assert by_name["Bx(VP)"].num_queries == by_name["Bx"].num_queries

    def test_build_standard_indexes_subset(self, small_params):
        workload = build_workload("uniform", small_params)
        indexes = build_standard_indexes(workload, small_params, which=("Bx",))
        assert set(indexes) == {"Bx"}
        with pytest.raises(ValueError):
            build_standard_indexes(workload, small_params, which=("NotAnIndex",))

    def test_build_extended_lineup_includes_plain_tpr(self, small_params):
        from repro.bench.harness import EXTENDED_INDEXES
        from repro.tprtree.tpr_tree import TPRTree
        from repro.tprtree.tprstar_tree import TPRStarTree

        workload = build_workload("CH", small_params)
        indexes = build_standard_indexes(workload, small_params, which=EXTENDED_INDEXES)
        assert type(indexes["TPR"]) is TPRTree
        assert type(indexes["TPR*"]) is TPRStarTree

    def test_runner_counts_io_per_operation(self, small_params):
        workload = build_workload("SA", small_params)
        index = BxTree(
            buffer=BufferManager(capacity=small_params.buffer_pages),
            space=small_params.space,
            max_update_interval=small_params.max_update_interval,
            page_size=small_params.page_size,
        )
        metrics = ExperimentRunner(workload).run(index, name="Bx")
        assert metrics.num_updates + metrics.num_queries == len(workload.events)
        assert metrics.build_time >= 0.0


class TestReporting:
    def test_format_table_alignment_and_content(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 222, "c": 3.5}]
        text = format_table(rows, title="T")
        assert text.startswith("T\n")
        assert "222" in text and "xy" in text and "c" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_rows_to_csv(self):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        csv = rows_to_csv(rows)
        assert csv.splitlines()[0] == "a,b"
        assert csv.splitlines()[2] == "3,4"
        assert rows_to_csv([]) == ""
