"""Tests for PCA and the DVA-finding clustering algorithms (Section 5.1)."""

import math
import random

import pytest

from repro.core.pc_kmeans import centroid_kmeans_dvas, find_dvas, pca_only_dva
from repro.core.pca import (
    explained_variance_ratio,
    first_principal_component,
    principal_components,
)
from repro.geometry.vector import Vector


def axis_sample(angles_degrees, points_per_axis=200, noise=2.0, speed=60.0, seed=0):
    """Velocity points concentrated along the given axes (both directions)."""
    rng = random.Random(seed)
    velocities = []
    for angle_deg in angles_degrees:
        angle = math.radians(angle_deg)
        direction = Vector(math.cos(angle), math.sin(angle))
        normal = direction.perpendicular()
        for _ in range(points_per_axis):
            magnitude = rng.uniform(-speed, speed)
            wobble = rng.gauss(0.0, noise)
            velocities.append(
                Vector(
                    direction.vx * magnitude + normal.vx * wobble,
                    direction.vy * magnitude + normal.vy * wobble,
                )
            )
    return velocities


def angle_of(axis: Vector) -> float:
    return math.degrees(axis.angle) % 180.0


def angular_difference(a: float, b: float) -> float:
    diff = abs(a - b) % 180.0
    return min(diff, 180.0 - diff)


class TestPCA:
    def test_requires_data(self):
        with pytest.raises(ValueError):
            principal_components([])

    def test_components_are_orthonormal(self):
        velocities = axis_sample([30.0])
        components = principal_components(velocities)
        (v1, _), (v2, _) = components
        assert v1.magnitude == pytest.approx(1.0)
        assert v2.magnitude == pytest.approx(1.0)
        assert abs(v1.dot(v2)) < 1e-9

    def test_first_component_finds_single_axis(self):
        velocities = axis_sample([40.0], noise=1.0)
        axis = first_principal_component(velocities)
        assert angular_difference(angle_of(axis), 40.0) < 3.0

    def test_variances_sorted_descending(self):
        velocities = axis_sample([10.0])
        components = principal_components(velocities)
        assert components[0][1] >= components[1][1]

    def test_explained_variance_near_one_for_1d_data(self):
        velocities = axis_sample([75.0], noise=0.5)
        assert explained_variance_ratio(velocities) > 0.95

    def test_degenerate_input_falls_back_to_x_axis(self):
        axis = first_principal_component([Vector(0.0, 0.0), Vector(0.0, 0.0)])
        assert axis == Vector(1.0, 0.0)

    def test_centered_pca_differs_for_shifted_data(self):
        # A cluster far from the origin: centered PCA sees its internal spread,
        # uncentered PCA sees mostly the offset direction.
        rng = random.Random(1)
        velocities = [Vector(50.0 + rng.gauss(0, 1), rng.gauss(0, 10)) for _ in range(500)]
        uncentered = first_principal_component(velocities, center=False)
        centered = first_principal_component(velocities, center=True)
        assert angular_difference(angle_of(uncentered), 0.0) < 10.0
        assert angular_difference(angle_of(centered), 90.0) < 10.0


class TestFindDVAs:
    def test_recovers_two_orthogonal_axes(self):
        velocities = axis_sample([0.0, 90.0], seed=2)
        result = find_dvas(velocities, k=2)
        found = sorted(angle_of(axis) for axis in result.axes)
        assert angular_difference(found[0], 0.0) < 5.0
        assert angular_difference(found[1], 90.0) < 5.0

    def test_recovers_rotated_axes(self):
        velocities = axis_sample([27.0, 117.0], seed=3)
        result = find_dvas(velocities, k=2)
        found = sorted(angle_of(axis) for axis in result.axes)
        assert angular_difference(found[0], 27.0) < 6.0
        assert angular_difference(found[1], 117.0) < 6.0

    def test_assignments_cover_all_points(self):
        velocities = axis_sample([0.0, 90.0], seed=4)
        result = find_dvas(velocities, k=2)
        assert len(result.assignments) == len(velocities)
        assert set(result.assignments) == {0, 1}

    def test_partition_members_counts(self):
        velocities = axis_sample([0.0, 90.0], points_per_axis=100, seed=5)
        result = find_dvas(velocities, k=2)
        groups = result.partition_members(velocities)
        assert sum(len(g) for g in groups) == len(velocities)
        # Roughly balanced between the two axes.
        assert min(len(g) for g in groups) > 50

    def test_k_must_be_valid(self):
        with pytest.raises(ValueError):
            find_dvas([Vector(1, 0)], k=0)
        with pytest.raises(ValueError):
            find_dvas([Vector(1, 0)], k=2)

    def test_single_axis_with_k1(self):
        velocities = axis_sample([60.0], seed=6)
        result = find_dvas(velocities, k=1)
        assert angular_difference(angle_of(result.axes[0]), 60.0) < 4.0

    def test_deterministic_given_seed(self):
        velocities = axis_sample([0.0, 90.0], seed=7)
        a = find_dvas(velocities, k=2, seed=123)
        b = find_dvas(velocities, k=2, seed=123)
        assert a.assignments == b.assignments


class TestNaiveBaselines:
    def test_pca_only_averages_two_axes(self):
        """Naive approach I: with two DVAs the single PC matches neither axis
        (Figure 10a) — it lands roughly between them.  Non-orthogonal axes are
        used because for two equally strong perpendicular axes the scatter
        matrix is isotropic and the PC direction is arbitrary."""
        velocities = axis_sample([0.0, 60.0], seed=8)
        result = pca_only_dva(velocities)
        angle = angle_of(result.axes[0])
        assert angular_difference(angle, 0.0) > 15.0
        assert angular_difference(angle, 60.0) > 15.0

    def test_centroid_kmeans_worse_than_pc_kmeans(self):
        """Naive approach II groups by closeness to a centroid, so its axes fit
        the data strictly worse (in perpendicular distance) than Algorithm 2."""
        velocities = axis_sample([0.0, 90.0], seed=9)

        def mean_perpendicular(result):
            return sum(
                v.perpendicular_distance_to_axis(result.axes[a])
                for v, a in zip(velocities, result.assignments)
            ) / len(velocities)

        ours = mean_perpendicular(find_dvas(velocities, k=2))
        naive = mean_perpendicular(centroid_kmeans_dvas(velocities, k=2))
        assert ours < naive

    def test_centroid_kmeans_requires_enough_points(self):
        with pytest.raises(ValueError):
            centroid_kmeans_dvas([Vector(1, 0)], k=2)
