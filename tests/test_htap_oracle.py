"""Epoch-pinned snapshot serving, proven against the consistency oracle.

The tentpole claim (``docs/htap.md``): every applied mutation batch
atomically advances a global epoch, and a query batch that pins an epoch
sees a consistent cross-shard cut — bit-identical to a quiescent twin
that applied exactly the batches up to that epoch — even while later
batches stream in.  These tests check the claim deterministically for
all four index families across all three executors, plus the epoch
API's edge semantics (held pins, GC floor, disabled snapshots, empty
batches, WAL recovery, durable restart).

The concurrent version of the same claim (threads actually racing) is
``tests/test_htap_stress.py``.
"""

from __future__ import annotations

import itertools
import os
import signal
import time

import pytest

from repro.bench.harness import build_standard_indexes
from repro.objects.knn import KNNQuery
from repro.serve import EpochOracle, ServeConfig, ShardedIndex, SnapshotTooOldError
from repro.workload.events import UpdateEvent
from repro.workload.generator import build_workload
from repro.workload.parameters import WorkloadParameters

PARAMS = WorkloadParameters(num_objects=250, time_duration=30.0, num_queries=8)

SHARDS = 3

INDEX_NAMES = ("Bx", "Bx(VP)", "TPR*", "TPR*(VP)")

EXECUTOR_NAMES = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def workload():
    return build_workload("SA", PARAMS)


@pytest.fixture(scope="module")
def update_batches(workload):
    return [
        [(event.old, event.new) for event in batch]
        for batch in workload.grouped_events(window=1.0)
        if isinstance(batch[0], UpdateEvent)
    ]


@pytest.fixture(scope="module")
def queries(workload):
    return [event.query for event in workload.query_events]


@pytest.fixture(scope="module")
def probes(workload):
    events = workload.sorted_events()
    issue_time = events[-1].time if events else 0.0
    return [
        KNNQuery(
            center=event.query.range.center,
            k=(1, 5, 10)[i % 3],
            query_time=issue_time + event.query.predictive_time,
            issue_time=issue_time,
        )
        for i, event in enumerate(workload.query_events)
    ]


def _build(workload, name="Bx", shards=SHARDS, executor="serial"):
    return build_standard_indexes(
        workload, PARAMS, which=(name,), shards=shards, executor=executor
    )[name]


def _oracle(index):
    return EpochOracle(
        num_shards=index.num_shards,
        shard_factory=index.shard_factory,
        space=PARAMS.space,
    )


def _loaded(index, oracle, workload):
    index.bulk_load(workload.initial_objects)
    oracle.record_mutation(index.epoch, "bulk_load", (workload.initial_objects, None))


def _pinned_answers(index, queries, probes):
    """One pinned consistent cut: (epoch, range answers, knn answers)."""
    with index.pin() as epoch:
        ranges = index.range_query_batch(queries, epoch=epoch)
        knn = index.knn_query_batch(probes, space=PARAMS.space, epoch=epoch)
    return epoch, ranges, knn


# ----------------------------------------------------------------------
# The tentpole: 4 families x 3 executors, interleaved stream + held pin
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name,executor", list(itertools.product(INDEX_NAMES, EXECUTOR_NAMES))
)
def test_pinned_answers_match_quiescent_twin(
    workload, update_batches, queries, probes, name, executor
):
    """Every pinned cut — fresh or held across half the stream — is exact.

    The first half of the stream answers a pinned batch after every
    update batch; a pin taken at the midpoint is then *held* while the
    second half applies, its answers re-read (and required frozen) after
    every batch.  The oracle replays everything into a quiescent twin
    and demands bit-identical answers at every recorded epoch.
    """
    index = _build(workload, name, executor=executor)
    with index, _oracle(index) as oracle:
        _loaded(index, oracle, workload)
        mid = len(update_batches) // 2
        for pairs in update_batches[:mid]:
            index.update_batch(pairs)
            oracle.record_mutation(index.epoch, "update_batch", pairs)
            epoch, ranges, knn = _pinned_answers(index, queries, probes)
            oracle.record_answer(epoch, "range", queries, ranges)
            oracle.record_answer(epoch, "knn", probes, knn)
        with index.pin() as stale:
            frozen_ranges = index.range_query_batch(queries, epoch=stale)
            frozen_knn = index.knn_query_batch(probes, space=PARAMS.space, epoch=stale)
            for pairs in update_batches[mid:]:
                index.update_batch(pairs)
                oracle.record_mutation(index.epoch, "update_batch", pairs)
                assert index.range_query_batch(queries, epoch=stale) == frozen_ranges
                assert (
                    index.knn_query_batch(probes, space=PARAMS.space, epoch=stale)
                    == frozen_knn
                )
            oracle.record_answer(stale, "range", queries, frozen_ranges)
            oracle.record_answer(stale, "knn", probes, frozen_knn)
        top, ranges, knn = _pinned_answers(index, queries, probes)
        assert top == index.epoch == 1 + len(update_batches)
        oracle.record_answer(top, "range", queries, ranges)
        oracle.record_answer(top, "knn", probes, knn)
        oracle.assert_consistent()


# ----------------------------------------------------------------------
# Epoch API edges (Bx / serial: the semantics are executor-independent)
# ----------------------------------------------------------------------
def test_explicit_epoch_must_be_published(workload, queries):
    index = _build(workload)
    with index:
        index.bulk_load(workload.initial_objects)
        assert index.epoch == 1
        with pytest.raises(ValueError, match="not published"):
            index.range_query_batch(queries, epoch=index.epoch + 1)
        with pytest.raises(ValueError, match="not published"):
            index.range_query_batch(queries, epoch=-1)


def test_epoch_pinning_requires_exact(workload, queries):
    index = _build(workload)
    with index:
        index.bulk_load(workload.initial_objects)
        with pytest.raises(ValueError, match="exact=True"):
            index.range_query_batch(queries, exact=False, epoch=index.epoch)
        # Approximate answers without a pin remain available.
        index.range_query_batch(queries, exact=False)


def test_snapshots_disabled_serves_live_and_rejects_pins(workload, queries):
    index = ShardedIndex.build(
        family="Bx",
        shards=2,
        executor="serial",
        config=ServeConfig(snapshots=False),
        space=PARAMS.space,
        buffer_pages=50,
        max_update_interval=PARAMS.max_update_interval,
    )
    with index:
        assert not index.snapshots_enabled
        index.bulk_load(workload.initial_objects)
        assert index.epoch == 0  # no epochs are assigned at all
        assert index.range_query_batch(queries) == index.range_query_batch(queries)
        with pytest.raises(RuntimeError, match="snapshots"):
            with index.pin():
                pass
        with pytest.raises(RuntimeError, match="snapshots"):
            index.range_query_batch(queries, epoch=0)


def test_empty_batches_consume_no_epoch_and_write_no_wal(workload):
    index = _build(workload)
    with index:
        index.bulk_load(workload.initial_objects)
        before_epoch = index.epoch
        before_wal = [len(index.shard_log(s).entries) for s in range(index.num_shards)]
        index.update_batch([])
        index.insert_batch([])
        assert index.delete_batch([]) == []
        index.bulk_load([])
        assert index.epoch == before_epoch
        assert [
            len(index.shard_log(s).entries) for s in range(index.num_shards)
        ] == before_wal


def test_epoch_below_gc_floor_raises_snapshot_too_old(workload, update_batches, queries):
    """Unpinned epochs are pruned; reading one fails loudly, not wrongly."""
    index = _build(workload)
    with index:
        index.bulk_load(workload.initial_objects)
        for pairs in update_batches[:3]:
            index.update_batch(pairs)
        # No pin was held, so the GC floor has advanced past epoch 1.
        with pytest.raises(SnapshotTooOldError, match="floor"):
            index.range_query_batch(queries, epoch=1)
        # The current epoch (and the one the last batch preserved) read fine.
        index.range_query_batch(queries, epoch=index.epoch)


def test_held_pin_blocks_gc_until_released(workload, update_batches, queries):
    index = _build(workload)
    with index:
        index.bulk_load(workload.initial_objects)
        with index.pin() as pinned:
            frozen = index.range_query_batch(queries, epoch=pinned)
            for pairs in update_batches[:4]:
                index.update_batch(pairs)
            # The pin keeps epoch 1 reconstructible arbitrarily far back.
            assert index.range_query_batch(queries, epoch=pinned) == frozen
        # Released: the *next* mutation batch may prune it.
        index.update_batch(update_batches[4])
        with pytest.raises(SnapshotTooOldError):
            index.range_query_batch(queries, epoch=pinned)


# ----------------------------------------------------------------------
# Recovery: epochs survive worker death and durable restarts
# ----------------------------------------------------------------------
def test_pinned_answers_survive_worker_sigkill(workload, update_batches, queries, probes):
    """WAL recovery replays epochs: post-recovery cuts stay oracle-exact."""
    index = _build(workload, executor="process")
    with index, _oracle(index) as oracle:
        _loaded(index, oracle, workload)
        for pairs in update_batches[:2]:
            index.update_batch(pairs)
            oracle.record_mutation(index.epoch, "update_batch", pairs)
        victim = 1
        os.kill(index.executor.worker_pid(victim), signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while index.executor.worker_alive(victim) and time.monotonic() < deadline:
            time.sleep(0.01)
        epoch_before = index.epoch
        for pairs in update_batches[2:5]:
            index.update_batch(pairs)
            oracle.record_mutation(index.epoch, "update_batch", pairs)
        assert index.epoch == epoch_before + 3  # recovery did not fork the counter
        assert any(e["shard_id"] == victim for e in index.recovery_events)
        epoch, ranges, knn = _pinned_answers(index, queries, probes)
        oracle.record_answer(epoch, "range", queries, ranges)
        oracle.record_answer(epoch, "knn", probes, knn)
        oracle.assert_consistent()


def test_durable_restart_restores_the_published_epoch(
    tmp_path, workload, update_batches, queries
):
    root = str(tmp_path / "store")
    index = ShardedIndex.build(
        family="Bx",
        shards=2,
        executor="serial",
        durable_dir=root,
        space=PARAMS.space,
        buffer_pages=50,
        max_update_interval=PARAMS.max_update_interval,
    )
    with index:
        index.bulk_load(workload.initial_objects)
        for pairs in update_batches[:3]:
            index.update_batch(pairs)
        saved_epoch = index.epoch
        saved_answers = index.range_query_batch(queries, epoch=saved_epoch)
    reopened = ShardedIndex.open(root)
    with reopened:
        assert reopened.epoch == saved_epoch
        assert reopened.range_query_batch(queries, epoch=saved_epoch) == saved_answers
        reopened.update_batch(update_batches[3])
        assert reopened.epoch == saved_epoch + 1  # the counter resumes, not resets
